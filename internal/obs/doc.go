// Package obs is the daemon's flight recorder: a stdlib-only typed
// metric registry rendered in the Prometheus text exposition format, job
// traces with per-stage spans propagated across cluster forwards, and
// log/slog helpers for the structured serving-path logs — one
// observability layer shared by internal/service, internal/cluster,
// internal/store, and cmd/odeprotod.
//
// # Registry
//
// A Registry holds metric families in three types:
//
//   - Counter: a monotonically increasing integer event count
//     (requests, cache hits, WAL fsyncs). Counters only Add.
//   - Gauge: a value that moves both ways (queue depth, bytes on disk,
//     peer liveness). Func-backed gauges and counters are sampled at
//     scrape time, so values that some other layer already tracks (the
//     queue length, the WAL size) are exposed without double
//     bookkeeping.
//   - Histogram: fixed, cumulative buckets plus _sum and _count
//     (latencies). Buckets are chosen at registration and never change,
//     so scrapes from different nodes aggregate.
//
// Every metric reads back (Counter.Value, Gauge.Value, Histogram
// snapshots), which is what lets /v1/stats be a thin view over the same
// registry /metrics renders: the two surfaces cannot disagree because
// there is only one set of numbers.
//
// # Cardinality rules
//
// Labels multiply time series, and an unbounded label value set is a
// memory leak and a scrape-size explosion. The registry therefore only
// accepts BOUNDED label sets, and enforces a hard per-family cap
// (maxChildren) by panicking — loudly, at the introduction site — rather
// than growing silently. The rule for choosing label values:
//
//   - enum-shaped values are fine: engine names, asyncnet modes, job
//     statuses, lifecycle stages;
//   - values fixed at boot are fine: the static cluster peer list;
//   - anything request-derived is forbidden: job IDs, cache keys, trace
//     IDs, client addresses, error strings. Those belong in logs and
//     traces, never in metric labels.
//
// # Exemplars
//
// Exemplars are how request-derived identity gets near a metric WITHOUT
// becoming a label: each histogram bucket retains at most ONE exemplar —
// the most recent traced observation that landed in it, overwritten in
// place — rendered in OpenMetrics syntax on the bucket line
// (`... 42 # {trace_id="abc..."} 0.017`). The cardinality rules for
// exemplars follow from that shape:
//
//   - storage is bounded by construction: one pointer per bucket per
//     series, regardless of traffic. No cap, no eviction policy, no
//     leak — an exemplar can only replace its predecessor;
//   - the ONLY exemplar label is trace_id, and only values passing
//     ValidTraceID are stored (ObserveTraced silently drops the rest).
//     Never put job IDs, cache keys, or free-form strings in an
//     exemplar: the trace ID already resolves to all of those via
//     GET /v1/jobs/{id}/trace;
//   - exemplars are diagnostics, not data: aggregation ignores them,
//     CheckHistogram only validates that a present exemplar's value lies
//     inside its bucket and its trace_id is well-formed. Code must never
//     branch on an exemplar's presence or value.
//
// # Windows and quantiles
//
// Histograms are cumulative since boot, which is the right shape for
// scrapers but the wrong one for "p99 over the last 5 minutes". The
// windowed layer (WindowedHistogram, WindowedCounter) keeps a ring of
// periodic snapshots; subtracting the baseline nearest now-d from the
// live snapshot yields the distribution over the last d, and
// HistogramSnapshot.Quantile interpolates p50/p95/p99 from it the way
// PromQL's histogram_quantile does — error bounded by the width of the
// bucket holding the rank. Callers supply every timestamp (nothing here
// reads the wall clock), so SLO evaluation is testable with a fake
// clock and deterministic under the repo's determinism lint.
//
// # Traces
//
// A trace is one job's correlatable trail: an ID minted at submit (or
// inherited from the X-Odeproto-Trace header when a cluster peer already
// minted one), carried across forwards, journaled in the WAL submit
// record, and grown with timestamped per-stage spans
// (queued → compiled → swept → persisted → responded). The service
// serves a job's spans at GET /v1/jobs/{id}/trace and logs them as one
// structured line at completion, so a forwarded job leaves the same
// trace ID in every involved node's logs.
package obs
