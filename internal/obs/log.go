package obs

import (
	"io"
	"log/slog"
)

// NewLogger returns a JSON slog logger writing to w, with the node name
// attached to every record so multi-node logs interleave legibly. An
// empty node is omitted.
func NewLogger(w io.Writer, node string) *slog.Logger {
	l := slog.New(slog.NewJSONHandler(w, nil))
	if node != "" {
		l = l.With("node", node)
	}
	return l
}

// NopLogger returns a logger that drops everything — the default when a
// component is constructed without one, so call sites never nil-check.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
