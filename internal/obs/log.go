package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger returns a JSON slog logger writing to w, with the node name
// attached to every record so multi-node logs interleave legibly. An
// empty node is omitted. The level is info; use NewLeveledLogger to
// choose.
func NewLogger(w io.Writer, node string) *slog.Logger {
	return NewLeveledLogger(w, node, slog.LevelInfo)
}

// NewLeveledLogger is NewLogger with an explicit minimum level — the
// -log-level flag lands here.
func NewLeveledLogger(w io.Writer, node string, level slog.Level) *slog.Logger {
	l := slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
	if node != "" {
		l = l.With("node", node)
	}
	return l
}

// ParseLevel maps a -log-level flag value (debug/info/warn/error,
// case-insensitive) to its slog level, rejecting anything else so a
// typo'd flag fails boot instead of silently logging at info.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// NopLogger returns a logger that drops everything — the default when a
// component is constructed without one, so call sites never nil-check.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
