package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// TraceHeader carries a job's trace ID across cluster forwards, so the
// node that accepted the submit and the node that owns the key log the
// same ID.
const TraceHeader = "X-Odeproto-Trace"

// Lifecycle stages, in the order a job moves through them. Cached
// jobs skip swept/persisted (nothing ran, nothing new was written).
const (
	StageQueued    = "queued"
	StageCompiled  = "compiled"
	StageSwept     = "swept"
	StagePersisted = "persisted"
	StageResponded = "responded"
)

// NewTraceID returns a 32-hex-char random trace ID.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform's randomness source is
		// gone; trace IDs are diagnostics, not security, so degrade to a
		// fixed sentinel rather than taking the serving path down.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether s is shaped like a trace ID this package
// minted — forwarded headers are untrusted input, and anything else is
// dropped rather than echoed into logs and the WAL.
func ValidTraceID(s string) bool {
	if len(s) != 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Span is one timestamped lifecycle stage.
type Span struct {
	Stage string    `json:"stage"`
	At    time.Time `json:"at"`
}

// Trace is one job's trail: the ID plus its spans so far. Safe for
// concurrent use; spans are append-only.
type Trace struct {
	ID   string
	Node string

	mu    sync.Mutex
	spans []Span
}

// NewTrace starts a trace. If id is empty or malformed a fresh ID is
// minted; node names the daemon recording the spans.
func NewTrace(id, node string) *Trace {
	if !ValidTraceID(id) {
		id = NewTraceID()
	}
	return &Trace{ID: id, Node: node}
}

// Add records a stage at time now.
func (t *Trace) Add(stage string, now time.Time) {
	t.mu.Lock()
	t.spans = append(t.spans, Span{Stage: stage, At: now})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in record order.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}
