package obs

import (
	"math"
	"sort"
	"testing"
	"time"
)

// quantDist is one known distribution for the accuracy table: a
// generator producing n deterministic values (no global rand — the
// fixtures must be identical run to run).
type quantDist struct {
	name string
	gen  func(i, n int) float64
}

// trueQuantile is the empirical q-quantile of a sorted sample — the
// ground truth the bucket interpolation is compared against.
func trueQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// bucketWidth returns the width of the DefBuckets bucket containing v —
// the estimator's documented error bound.
func bucketWidth(v float64) float64 {
	i := sort.SearchFloat64s(DefBuckets, v)
	if i >= len(DefBuckets) {
		i = len(DefBuckets) - 1
	}
	lower := 0.0
	if i > 0 {
		lower = DefBuckets[i-1]
	}
	return DefBuckets[i] - lower
}

func TestQuantileAccuracyTable(t *testing.T) {
	const n = 10000
	dists := []quantDist{
		// Uniform over (0, 2]: spans many buckets evenly.
		{"uniform", func(i, n int) float64 { return 2 * float64(i+1) / float64(n) }},
		// Exponential-ish spread: mass concentrated low, long tail —
		// the shape job latency actually has.
		{"exponential", func(i, n int) float64 {
			u := float64(i+1) / float64(n+1)
			return -0.05 * math.Log(1-u)
		}},
		// Constant: every observation in one bucket; interpolation must
		// stay within that bucket for every quantile.
		{"constant", func(i, n int) float64 { return 0.3 }},
		// Bimodal: fast cache hits and slow sweeps, nothing between.
		{"bimodal", func(i, n int) float64 {
			if i%2 == 0 {
				return 0.002
			}
			return 4
		}},
	}
	for _, d := range dists {
		t.Run(d.name, func(t *testing.T) {
			h := newHistogram(DefBuckets)
			values := make([]float64, n)
			for i := range values {
				v := d.gen(i, n)
				values[i] = v
				h.Observe(v)
			}
			sort.Float64s(values)
			snap := h.Snapshot()
			if snap.Count() != n {
				t.Fatalf("snapshot count = %d, want %d", snap.Count(), n)
			}
			for _, q := range []float64{0.5, 0.95, 0.99} {
				est := snap.Quantile(q)
				truth := trueQuantile(values, q)
				if tol := bucketWidth(truth); math.Abs(est-truth) > tol {
					t.Errorf("p%g = %v, true %v, |err| %v > bucket width %v",
						q*100, est, truth, math.Abs(est-truth), tol)
				}
			}
		})
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := newHistogram(DefBuckets)
	if q := h.Snapshot().Quantile(0.99); !math.IsNaN(q) {
		t.Fatalf("empty quantile = %v, want NaN", q)
	}
	// Everything beyond the last finite bucket: the estimate clamps to
	// the highest finite bound rather than inventing a number.
	h.Observe(1e6)
	if q := h.Snapshot().Quantile(0.5); q != DefBuckets[len(DefBuckets)-1] {
		t.Fatalf("+Inf-bucket quantile = %v, want %v", q, DefBuckets[len(DefBuckets)-1])
	}
}

func TestFractionOver(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 8; i++ {
		h.Observe(float64(i) / 2) // 0, .5, 1, 1.5, 2, 2.5, 3, 3.5
	}
	snap := h.Snapshot()
	if got := snap.FractionOver(2); math.Abs(got-0.375) > 0.13 {
		t.Fatalf("FractionOver(2) = %v, want ~0.375 within bucket error", got)
	}
	if got := snap.FractionOver(100); got != 0 {
		t.Fatalf("FractionOver beyond all buckets = %v, want 0", got)
	}
	empty := newHistogram([]float64{1})
	if got := empty.Snapshot().FractionOver(0.5); got != 0 {
		t.Fatalf("empty FractionOver = %v, want 0", got)
	}
}

func TestWindowedHistogramDeltas(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	w := NewWindowedHistogram(h, time.Hour)
	clock := time.Unix(1700000000, 0)

	// Before any tick: whole lifetime, zero coverage claimed.
	h.Observe(0.5)
	snap, covered := w.Window(clock, 5*time.Minute)
	if snap.Count() != 1 || covered != 0 {
		t.Fatalf("pre-tick window = count %d covered %v", snap.Count(), covered)
	}

	w.Tick(clock)
	for i := 0; i < 4; i++ {
		clock = clock.Add(time.Minute)
		h.Observe(5) // lands in le=10
		w.Tick(clock)
	}
	// 5-minute window spans all ticks: the 4 new observations, not the
	// pre-baseline one.
	snap, covered = w.Window(clock, 5*time.Minute)
	if snap.Count() != 4 {
		t.Fatalf("5m window count = %d, want 4", snap.Count())
	}
	if covered != 4*time.Minute {
		t.Fatalf("5m window covered = %v, want 4m", covered)
	}
	// 2-minute window: baseline is the tick 2m ago → 2 observations.
	snap, covered = w.Window(clock, 2*time.Minute)
	if snap.Count() != 2 || covered != 2*time.Minute {
		t.Fatalf("2m window = count %d covered %v, want 2, 2m", snap.Count(), covered)
	}
	// The delta distribution reflects only windowed observations.
	if q := snap.Quantile(0.5); q <= 1 || q > 10 {
		t.Fatalf("windowed p50 = %v, want in (1, 10]", q)
	}
}

func TestWindowRingEviction(t *testing.T) {
	h := newHistogram([]float64{1})
	w := NewWindowedHistogram(h, 10*time.Minute)
	clock := time.Unix(1700000000, 0)
	for i := 0; i < 100; i++ {
		w.Tick(clock)
		clock = clock.Add(time.Minute)
	}
	w.ring.mu.Lock()
	n := len(w.ring.entries)
	w.ring.mu.Unlock()
	// Retention is 10m at 1m ticks: ~11 entries (one baseline at or
	// beyond the cut is kept), not 100.
	if n > 12 {
		t.Fatalf("ring holds %d entries after eviction, want <= 12", n)
	}
	// A window at full retention is still answerable.
	if _, covered := w.Window(clock, 10*time.Minute); covered < 10*time.Minute {
		t.Fatalf("full-retention window covered only %v", covered)
	}
}

func TestWindowedCounter(t *testing.T) {
	c := &Counter{}
	w := NewWindowedCounter(c, time.Hour)
	clock := time.Unix(1700000000, 0)
	c.Add(100)
	w.Tick(clock)
	clock = clock.Add(5 * time.Minute)
	c.Add(7)
	w.Tick(clock)
	clock = clock.Add(5 * time.Minute)
	c.Add(3)
	if delta, covered := w.Window(clock, 10*time.Minute); delta != 10 || covered != 10*time.Minute {
		t.Fatalf("10m delta = %d covered %v, want 10, 10m", delta, covered)
	}
	if delta, _ := w.Window(clock, 5*time.Minute); delta != 3 {
		t.Fatalf("5m delta = %d, want 3", delta)
	}
}

func TestSnapshotSubClampsMonotone(t *testing.T) {
	// A baseline that claims more than the live snapshot (possible only
	// under racing reads) must not produce negative or non-monotone
	// deltas.
	cur := HistogramSnapshot{Upper: []float64{1, 2}, Cum: []int64{5, 6, 8}}
	old := HistogramSnapshot{Upper: []float64{1, 2}, Cum: []int64{6, 6, 6}}
	d := cur.Sub(old)
	prev := int64(0)
	for i, v := range d.Cum {
		if v < prev {
			t.Fatalf("delta not monotone at %d: %v", i, d.Cum)
		}
		prev = v
	}
	if d.Cum[0] != 0 {
		t.Fatalf("negative delta not clamped: %v", d.Cum)
	}
}
