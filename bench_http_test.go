// Benchmarks for the encode-once result data plane: each pair puts the
// hot read path (serving canonical bytes memoized at job completion)
// against an ...Encode baseline that performs the work the pre-encode-once
// service paid on every request — a fresh json.Marshal of the result (plus
// gzip compression or per-row rendering, for those variants). CI runs the
// pairs into BENCH_http.json, so the hot-path/baseline throughput ratio is
// machine-comparable across commits; the acceptance bar for the data plane
// is ≥5× on the hot cache-hit GET.
package odeproto_test

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"odeproto/internal/service"
)

// benchResultSpec is a sweep whose result is large enough (1000 recorded
// rows, ~40 KiB of JSON) that encoding dominates serving — the regime the
// encode-once plane is built for.
func benchResultSpec() []byte {
	body, err := json.Marshal(map[string]any{
		"source":  "x' = -x*y\ny' = x*y",
		"n":       1000,
		"initial": map[string]int{"x": 990, "y": 10},
		"periods": 500,
		"seeds":   2,
		"seed":    11,
	})
	if err != nil {
		panic(err)
	}
	return body
}

// runBenchJob is postServiceJob returning the terminal status (the result
// benchmarks need the cache key and job ID).
func runBenchJob(b *testing.B, handler http.Handler, body []byte) service.JobStatus {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", newBody(body))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK && rec.Code != http.StatusAccepted {
		b.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	var st service.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		b.Fatal(err)
	}
	for st.Status == service.StatusQueued || st.Status == service.StatusRunning {
		req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+st.ID, nil)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("poll: %d %s", rec.Code, rec.Body.String())
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			b.Fatal(err)
		}
	}
	if st.Status != service.StatusDone {
		b.Fatalf("job finished %s: %s", st.Status, st.Error)
	}
	return st
}

func newBody(data []byte) io.Reader { return &sliceReader{data: data} }

// sliceReader is a minimal one-shot reader (bytes.NewReader without the
// extra interface surface; keeps the request-building allocation profile
// flat across iterations).
type sliceReader struct {
	data []byte
	off  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// setupResultPlane boots a one-worker service, runs the large sweep once,
// and returns the handler plus the finished job's status. Every result
// benchmark iterates against this warm state.
func setupResultPlane(b *testing.B) (http.Handler, *service.Server, service.JobStatus) {
	b.Helper()
	srv := service.New(service.Config{Workers: 1})
	b.Cleanup(srv.Close)
	handler := srv.Handler()
	st := runBenchJob(b, handler, benchResultSpec())
	return handler, srv, st
}

// handlerGet drives one GET through the handler with optional headers.
func handlerGet(b *testing.B, handler http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	return rec
}

// BenchmarkResultGetHot measures the hot cache-hit GET /v1/results/{key}:
// every response is a copy of the shared canonical buffer, and the
// encodes-saved counter check proves no iteration performed a JSON encode.
func BenchmarkResultGetHot(b *testing.B) {
	handler, srv, st := setupResultPlane(b)
	path := "/v1/results/" + st.CacheKey
	before := srv.Stats().ResultEncodesSaved
	var bytesOut int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := handlerGet(b, handler, path, nil)
		if rec.Code != http.StatusOK {
			b.Fatalf("hot GET: %d", rec.Code)
		}
		bytesOut = rec.Body.Len()
	}
	b.StopTimer()
	if advanced := srv.Stats().ResultEncodesSaved - before; advanced < int64(b.N) {
		b.Fatalf("hot path re-encoded: encodes_saved advanced %d for %d GETs", advanced, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(float64(bytesOut), "body_bytes")
}

// BenchmarkResultGetHotEncode is the per-request-encode baseline: the
// marshal the pre-encode-once handler ran for every result GET, writing
// into the same recorder shape. The Hot/HotEncode req/s ratio is the
// data plane's acceptance number.
func BenchmarkResultGetHotEncode(b *testing.B) {
	handler, _, st := setupResultPlane(b)
	rec := handlerGet(b, handler, "/v1/jobs/"+st.ID, nil)
	var full service.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &full); err != nil {
		b.Fatal(err)
	}
	if full.Result == nil {
		b.Fatal("no result on the finished job")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := json.Marshal(full.Result)
		if err != nil {
			b.Fatal(err)
		}
		rec := httptest.NewRecorder()
		rec.Header().Set("Content-Type", "application/json")
		if _, err := rec.Body.Write(data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkResultGet304 measures the conditional-GET fast path: the
// If-None-Match validator matches, so the handler answers 304 without
// touching (or allocating) any result-sized buffer.
func BenchmarkResultGet304(b *testing.B) {
	handler, _, st := setupResultPlane(b)
	path := "/v1/results/" + st.CacheKey
	hdr := map[string]string{"If-None-Match": `"` + st.CacheKey + `"`}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := handlerGet(b, handler, path, hdr)
		if rec.Code != http.StatusNotModified {
			b.Fatalf("conditional GET: %d", rec.Code)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkResultGet304Encode is the revalidation baseline: a server
// without conditional-GET support re-encodes and re-sends the full body
// on every poll — the work a 304 avoids entirely.
func BenchmarkResultGet304Encode(b *testing.B) {
	handler, _, st := setupResultPlane(b)
	rec := handlerGet(b, handler, "/v1/jobs/"+st.ID, nil)
	var full service.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &full); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := json.Marshal(full.Result)
		if err != nil {
			b.Fatal(err)
		}
		rec := httptest.NewRecorder()
		if _, err := rec.Body.Write(data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkResultGetGzip measures compressed serving from the memoized
// gzip variant: after the first request builds it, every response copies
// pre-compressed bytes.
func BenchmarkResultGetGzip(b *testing.B) {
	handler, _, st := setupResultPlane(b)
	path := "/v1/results/" + st.CacheKey
	hdr := map[string]string{"Accept-Encoding": "gzip"}
	if rec := handlerGet(b, handler, path, hdr); rec.Header().Get("Content-Encoding") != "gzip" {
		b.Fatal("gzip variant not negotiated")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := handlerGet(b, handler, path, hdr)
		if rec.Code != http.StatusOK {
			b.Fatalf("gzip GET: %d", rec.Code)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkResultGetGzipEncode is the per-request compression baseline:
// marshal plus a full gzip pass per response.
func BenchmarkResultGetGzipEncode(b *testing.B) {
	handler, _, st := setupResultPlane(b)
	rec := handlerGet(b, handler, "/v1/jobs/"+st.ID, nil)
	var full service.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &full); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := json.Marshal(full.Result)
		if err != nil {
			b.Fatal(err)
		}
		rec := httptest.NewRecorder()
		zw := gzip.NewWriter(rec.Body)
		if _, err := zw.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkStreamReplay measures a cache-hit stream replay: the NDJSON
// rows come from the blob's memoized pre-rendered row set, one write per
// row, no per-replay marshaling.
func BenchmarkStreamReplay(b *testing.B) {
	handler, _, st := setupResultPlane(b)
	path := "/v1/jobs/" + st.ID + "/stream"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := handlerGet(b, handler, path, nil)
		if rec.Code != http.StatusOK {
			b.Fatalf("stream replay: %d", rec.Code)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkStreamReplayEncode is the per-replay rendering baseline: one
// json.Marshal and two writes per row (the loop the old replay path ran),
// re-rendering the full row set on every request.
func BenchmarkStreamReplayEncode(b *testing.B) {
	handler, _, st := setupResultPlane(b)
	rec := handlerGet(b, handler, "/v1/jobs/"+st.ID, nil)
	var full service.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &full); err != nil {
		b.Fatal(err)
	}
	if full.Result == nil {
		b.Fatal("no result on the finished job")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		for ri := range full.Result.Runs {
			run := &full.Result.Runs[ri]
			for _, row := range run.Rows {
				data, err := json.Marshal(service.StreamRow{Run: ri, Seed: run.Seed, Period: row.Period, Counts: row.Counts})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := rec.Body.Write(data); err != nil {
					b.Fatal(err)
				}
				if _, err := rec.Body.Write([]byte("\n")); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
