// Command odeproto is the front door to the translation framework: it
// reads a differential equation system in the text DSL, classifies it
// against the paper's taxonomy (§2), optionally rewrites it into mappable
// form (§7), translates it into a distributed protocol (§3/§6), and can
// simulate the protocol (§5).
//
// Usage:
//
//	odeproto -file endemic.ode -params beta=4,gamma=1,alpha=0.01
//	odeproto -file lv.ode -p 0.01 -simulate 100000 -initial x=60000,y=40000 -periods 1000
//	odeproto -file epi.ode -simulate 1000000 -engine aggregate
//	odeproto -file epi.ode -simulate 100000 -engine asyncnet
//
// Simulation runs through the harness Runner layer; -engine selects the
// per-process agent engine, the count-based aggregate engine, or the
// asynchronous runtime (whose -async-mode defaults to the deterministic
// virtual-time scheduler; wallclock selects real goroutines and timers).
//
// The DSL has one equation per line, e.g.:
//
//	x' = -beta*x*y + alpha*z
//	y' = beta*x*y - gamma*y
//	z' = gamma*y - alpha*z
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"odeproto/internal/asyncnet"
	"odeproto/internal/core"
	"odeproto/internal/dynamics"
	"odeproto/internal/harness"
	"odeproto/internal/ode"
	"odeproto/internal/rewrite"
	"odeproto/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "odeproto:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("odeproto", flag.ContinueOnError)
	var (
		file      = fs.String("file", "", "equation system file (DSL); '-' for stdin")
		params    = fs.String("params", "", "comma-separated parameter values, e.g. beta=4,gamma=1")
		pFlag     = fs.Float64("p", 0, "normalizing constant p (0 = auto)")
		failure   = fs.Float64("f", 0, "compensated connection failure rate")
		rewriteIt = fs.Bool("rewrite", true, "rewrite non-mappable systems (§7) before translating")
		slack     = fs.String("slack", "z", "slack variable name used by rewriting")
		analyze   = fs.Bool("analyze", false, "locate and classify equilibria")
		simulate  = fs.Int("simulate", 0, "simulate the protocol over this many processes")
		initial   = fs.String("initial", "", "initial counts, e.g. x=900,y=100")
		periods   = fs.Int("periods", 100, "periods to simulate")
		seed      = fs.Int64("seed", 1, "simulation seed")
		every     = fs.Int("every", 10, "print simulated counts every this many periods")
		engine    = fs.String("engine", "agent", "simulation engine: agent (per-process), aggregate (count-based), or asyncnet (asynchronous runtime)")
		shards    = fs.Int("shards", 0, "agent-engine RNG shards K (0/1 = serial; fixed K is reproducible at any worker count)")
		asyncMode = fs.String("async-mode", "", "asyncnet execution mode: virtual (default; deterministic discrete-event scheduler) or wallclock (real goroutines and timers)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; exit 0 like the old flag.Parse behavior
		}
		return err
	}
	harness.SetDefaultShards(*shards)
	if *file == "" {
		fs.Usage()
		return fmt.Errorf("missing -file")
	}
	src, err := readSource(*file)
	if err != nil {
		return err
	}
	paramMap, err := parseKV(*params)
	if err != nil {
		return err
	}

	sys, err := ode.Parse(src, paramMap)
	if err != nil {
		return err
	}
	fmt.Println("equations:")
	fmt.Println(indent(sys.String()))
	cls := sys.Classify()
	fmt.Printf("taxonomy: %s\n", cls)

	if !cls.Mappable() {
		if !*rewriteIt {
			return fmt.Errorf("system is not mappable and -rewrite=false")
		}
		rewritten, err := rewrite.MakeMappable(sys, ode.Var(*slack))
		if err != nil {
			return fmt.Errorf("rewriting failed: %w", err)
		}
		sys = rewritten
		fmt.Println("rewritten (complete + homogenized + split):")
		fmt.Println(indent(sys.String()))
		fmt.Printf("taxonomy: %s\n", sys.Classify())
	}

	proto, err := core.Translate(sys, core.Options{P: *pFlag, FailureRate: *failure})
	if err != nil {
		return err
	}
	fmt.Println("protocol:")
	fmt.Print(indent(proto.String()))
	for _, s := range proto.States {
		fmt.Printf("  state %s sends %d sampling message(s) per period\n", s, proto.SamplingMessages(s))
	}

	if *analyze {
		if err := analyzeSystem(sys); err != nil {
			return err
		}
	}
	if *simulate > 0 {
		return runSimulation(proto, *simulate, *initial, *periods, *seed, *every, *engine, *asyncMode)
	}
	return nil
}

func analyzeSystem(sys *ode.System) error {
	fmt.Println("equilibria (Newton from a simplex seed grid):")
	vars := sys.Vars()
	elim := vars[len(vars)-1]
	seeds := simplexSeeds(vars)
	eqs := dynamics.FindEquilibria(sys, elim, seeds)
	if len(eqs) == 0 {
		fmt.Println("  none found")
		return nil
	}
	for _, e := range eqs {
		var parts []string
		for _, v := range vars {
			parts = append(parts, fmt.Sprintf("%s=%.6g", v, e.Point[v]))
		}
		fmt.Printf("  (%s): %s, eigenvalues %v\n", strings.Join(parts, ", "), e.Class, e.Eigenvalues)
	}
	return nil
}

// simplexSeeds returns a coarse grid of seed points on the simplex.
func simplexSeeds(vars []ode.Var) []map[ode.Var]float64 {
	var seeds []map[ode.Var]float64
	fracs := []float64{0.01, 0.33, 0.9}
	m := len(vars)
	var build func(i int, remaining float64, cur map[ode.Var]float64)
	build = func(i int, remaining float64, cur map[ode.Var]float64) {
		if i == m-1 {
			point := make(map[ode.Var]float64, m)
			for k, v := range cur {
				point[k] = v
			}
			point[vars[i]] = remaining
			seeds = append(seeds, point)
			return
		}
		for _, f := range fracs {
			take := remaining * f
			cur[vars[i]] = take
			build(i+1, remaining-take, cur)
		}
		delete(cur, vars[i])
	}
	build(0, 1, make(map[ode.Var]float64))
	return seeds
}

func runSimulation(proto *core.Protocol, n int, initialSpec string, periods int, seed int64, every int, engine, asyncMode string) error {
	if engine != "asyncnet" && asyncMode != "" {
		// Mirror the service's validation: a mode on a synchronous engine
		// is a mistyped request, not a no-op.
		return fmt.Errorf("-async-mode %q is only meaningful with -engine asyncnet", asyncMode)
	}
	counts := make(map[ode.Var]int, len(proto.States))
	if initialSpec == "" {
		// Uniform split with remainder on the first state.
		per := n / len(proto.States)
		rem := n - per*len(proto.States)
		for i, s := range proto.States {
			counts[s] = per
			if i == 0 {
				counts[s] += rem
			}
		}
	} else {
		kv, err := parseKV(initialSpec)
		if err != nil {
			return err
		}
		total := 0
		for k, v := range kv {
			counts[ode.Var(k)] = int(v)
			total += int(v)
		}
		if rest := n - total; rest > 0 {
			counts[proto.States[len(proto.States)-1]] += rest
		}
	}
	var newRunner func(seed int64) (harness.Runner, error)
	switch engine {
	case "agent":
		newRunner = func(seed int64) (harness.Runner, error) {
			return harness.NewAgent(sim.Config{N: n, Protocol: proto, Initial: counts, Seed: seed})
		}
	case "aggregate":
		newRunner = func(seed int64) (harness.Runner, error) {
			return harness.NewAggregate(proto, counts, seed, 0)
		}
	case "asyncnet":
		mode, err := asyncnet.Mode(asyncMode).Normalize()
		if err != nil {
			return err
		}
		newRunner = func(seed int64) (harness.Runner, error) {
			return asyncnet.NewRunner(asyncnet.Config{
				N: n, Protocol: proto, Initial: counts, Seed: seed, Mode: mode,
			})
		}
	default:
		return fmt.Errorf("unknown engine %q (want agent, aggregate, or asyncnet)", engine)
	}
	if every < 1 {
		every = 1
	}
	header := []string{"period"}
	for _, s := range proto.States {
		header = append(header, string(s))
	}
	fmt.Println(strings.Join(header, "\t"))
	printRow := func(r harness.Runner, t int) {
		row := []string{strconv.Itoa(t)}
		for _, s := range proto.States {
			row = append(row, strconv.Itoa(r.Count(s)))
		}
		fmt.Println(strings.Join(row, "\t"))
	}
	res := harness.Run(harness.Job{
		Name:    "odeproto-simulate",
		Seed:    seed,
		New:     newRunner,
		Periods: periods,
		BeforeStep: func(r harness.Runner, t int) {
			if t%every == 0 {
				printRow(r, t)
			}
		},
		Done: func(r harness.Runner) error {
			if periods%every == 0 {
				printRow(r, periods)
			}
			return nil
		},
	})
	return res.Err
}

func readSource(path string) (string, error) {
	if path == "-" {
		data, err := os.ReadFile("/dev/stdin")
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func parseKV(spec string) (map[string]float64, error) {
	out := make(map[string]float64)
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad key=value pair %q", part)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %w", part, err)
		}
		out[strings.TrimSpace(kv[0])] = v
	}
	return out, nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
