package main

import (
	"os"
	"path/filepath"
	"testing"

	"odeproto/internal/ode"
)

func TestParseKV(t *testing.T) {
	kv, err := parseKV("beta=4, gamma=0.5,alpha=1e-3")
	if err != nil {
		t.Fatal(err)
	}
	if kv["beta"] != 4 || kv["gamma"] != 0.5 || kv["alpha"] != 1e-3 {
		t.Fatalf("parseKV = %v", kv)
	}
	if m, err := parseKV("  "); err != nil || len(m) != 0 {
		t.Fatalf("empty spec: %v %v", m, err)
	}
	if _, err := parseKV("beta"); err == nil {
		t.Fatal("missing '=' accepted")
	}
	if _, err := parseKV("beta=x"); err == nil {
		t.Fatal("non-numeric value accepted")
	}
}

func TestSimplexSeedsSumToOne(t *testing.T) {
	seeds := simplexSeeds([]ode.Var{"a", "b", "c"})
	if len(seeds) == 0 {
		t.Fatal("no seeds")
	}
	for _, s := range seeds {
		var sum float64
		for _, v := range s {
			if v < 0 {
				t.Fatalf("negative seed coordinate in %v", s)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("seed %v sums to %v", s, sum)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "epi.ode")
	if err := os.WriteFile(path, []byte("x' = -x*y\ny' = x*y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path, "-simulate", "500", "-periods", "30", "-every", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRewritePath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lv6.ode")
	src := "x' = 3*x - 3*x^2 - 6*x*y\ny' = 3*y - 3*y^2 - 6*x*y\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path, "-p", "0.01", "-analyze"}); err != nil {
		t.Fatal(err)
	}
	// With rewriting disabled the same file must fail.
	if err := run([]string{"-file", path, "-rewrite=false"}); err == nil {
		t.Fatal("non-mappable system accepted with -rewrite=false")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing -file accepted")
	}
	if err := run([]string{"-file", "/nonexistent/x.ode"}); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.ode")
	if err := os.WriteFile(bad, []byte("x' = -k*x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", bad}); err == nil {
		t.Fatal("unknown identifier accepted")
	}
}
