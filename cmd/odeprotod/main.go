// Command odeprotod serves the full paper pipeline — parse ODEs, rewrite
// to mappable form (§7), translate to a distributed protocol (§3/§6), and
// simulate at scale (§5) — as a long-running HTTP/JSON daemon with a
// bounded job queue, a worker pool, and a content-addressed result cache
// (see internal/service).
//
// Usage:
//
//	odeprotod -addr :8080
//	odeprotod -addr 127.0.0.1:9090 -workers 4 -queue 128 -cache 512
//	odeprotod -data /var/lib/odeprotod -compact-on-start -resume-interrupted
//
// With -data, job lifecycle transitions are journaled to a segmented,
// CRC-checksummed WAL and completed results are persisted as
// content-addressed blobs (internal/store), so a restarted daemon
// recovers its job list, warms the result cache from disk, and serves
// previously computed sweeps without re-simulating (see README.md
// "Durability"). -wal-group-commit coalesces concurrent WAL appends
// into shared fsyncs. While recovery runs, every endpoint — including
// GET /v1/healthz — answers 503 {"status":"recovering"}, so cluster
// probers don't route to a node that can't serve results yet.
//
// With -peers, the daemon joins a static cluster: every node runs the
// identical peer list, any node accepts any request, and a
// consistent-hash ring over the job's content address routes each
// request to its owner (see internal/cluster and README.md "Running a
// cluster"):
//
//	odeprotod -addr :8080 -peers host1:8080,host2:8080,host3:8080 -self host1:8080
//
// Observability (README.md "Observability"): Prometheus-format metrics
// with per-bucket trace-ID exemplars at GET /metrics, per-job lifecycle
// traces at GET /v1/jobs/{id}/trace (rendered as a waterfall SVG at
// /trace.svg), burn-rate SLO evaluation at GET /v1/slo (spec via
// -slo-config, sensible defaults compiled in), JSON structured logs on
// stderr filtered by -log-level, and — with -debug-addr — net/http/pprof
// and expvar on a separate listener kept off the public port.
//
// Quick tour (see README.md "Running the service" for the full schema):
//
//	curl -s localhost:8080/v1/healthz
//	curl -s localhost:8080/v1/compile -d '{"source": "x'"'"' = -x*y\ny'"'"' = x*y"}'
//	curl -s localhost:8080/v1/jobs -d '{"source": "x'"'"' = -x*y\ny'"'"' = x*y", "n": 10000, "periods": 50}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -s localhost:8080/v1/jobs/j000001/trace
//	curl -s localhost:8080/v1/jobs/j000001/figure.svg
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"odeproto/internal/cluster"
	"odeproto/internal/obs"
	"odeproto/internal/service"
	"odeproto/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "odeprotod:", err)
		os.Exit(1)
	}
}

// switchHandler is an atomically swappable http.Handler. The daemon
// serves it from the first moment the listener is open: a "recovering"
// handler answers 503 while WAL replay and cache warming run, then the
// real mux is swapped in before ready is signaled. Cluster probers treat
// the 503 as down and keep routing around the node until it can serve.
type switchHandler struct {
	h atomic.Value // http.Handler
}

func newSwitchHandler(initial http.Handler) *switchHandler {
	sw := &switchHandler{}
	sw.h.Store(&initial)
	return sw
}

func (sw *switchHandler) swap(h http.Handler) { sw.h.Store(&h) }

func (sw *switchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*sw.h.Load().(*http.Handler)).ServeHTTP(w, r)
}

// recoveringHandler answers every request — healthz included — with 503
// so load balancers and peers back off until recovery finishes.
func recoveringHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"status":"recovering"}` + "\n"))
	})
}

// debugHandler serves pprof and expvar. It is only ever mounted on the
// -debug-addr listener, never the public one: profiles can stall the
// process and expvar exposes memory internals.
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// run starts the daemon and blocks until the context is cancelled or the
// listener fails. When ready is non-nil, the bound address is sent on it
// once the server is accepting connections and recovery has finished
// (the end-to-end tests listen on 127.0.0.1:0 and need the resolved
// port).
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("odeprotod", flag.ContinueOnError)
	var (
		addr           = fs.String("addr", ":8080", "HTTP listen address")
		workers        = fs.Int("workers", 2, "jobs simulated concurrently")
		queue          = fs.Int("queue", 64, "bounded job-queue depth (full queue = 503)")
		cacheSize      = fs.Int("cache", 256, "content-addressed result cache capacity (results, LRU)")
		sweepWorkers   = fs.Int("sweep-workers", 0, "harness worker-pool size per job sweep (0 = all cores)")
		maxN           = fs.Int("max-n", 0, "per-job group-size limit (0 = service default)")
		maxPeriods     = fs.Int("max-periods", 0, "per-job period limit (0 = service default)")
		dataDir        = fs.String("data", "", "durable data directory: WAL-journaled jobs + persisted results (empty = in-memory only)")
		walSegBytes    = fs.Int64("wal-segment-bytes", 0, "rotate WAL segments beyond this size (0 = store default, 4 MiB)")
		walGroupCommit = fs.Bool("wal-group-commit", false, "coalesce concurrent WAL appends into shared fsyncs (with -data)")
		compactOnStart = fs.Bool("compact-on-start", false, "compact the WAL after recovery, dropping superseded records")
		resumeInterr   = fs.Bool("resume-interrupted", false, "resubmit jobs the previous process left queued or mid-run (specs are recovered from the WAL)")
		peersFlag      = fs.String("peers", "", "comma-separated static cluster peer list (host:port, this node included); every node must be started with the identical list")
		selfFlag       = fs.String("self", "", "this node's entry in -peers (default: inferred from the bound listen address)")
		debugAddr      = fs.String("debug-addr", "", "serve net/http/pprof and expvar on this separate address (empty = off); never expose it publicly")
		logLevel       = fs.String("log-level", "info", "minimum structured-log level: debug, info, warn, or error")
		sloConfig      = fs.String("slo-config", "", "JSON SLO spec evaluated into GET /v1/slo and odeproto_slo_* gauges (empty = compiled-in job latency + error-rate defaults)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; exit 0 like the old flag.Parse behavior
		}
		return err
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	var slo *service.SLOConfig
	if *sloConfig != "" {
		data, err := os.ReadFile(*sloConfig)
		if err != nil {
			return fmt.Errorf("reading -slo-config: %w", err)
		}
		cfg, err := service.ParseSLOConfig(data)
		if err != nil {
			return fmt.Errorf("parsing -slo-config %s: %w", *sloConfig, err)
		}
		slo = &cfg
	}

	// Listen before building the service: cluster membership infers this
	// node's identity from the bound port (":0" in tests resolves here).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close() // idempotent; Serve/Shutdown normally close it first

	var peerList []string
	self, idPrefix := "", ""
	if *peersFlag != "" {
		peerList, err = cluster.NormalizePeers(strings.Split(*peersFlag, ","))
		if err != nil {
			return err
		}
		self = *selfFlag
		if self == "" {
			if self, err = inferSelf(peerList, ln.Addr()); err != nil {
				return err
			}
		}
		if idPrefix, err = cluster.NodePrefix(peerList, self); err != nil {
			return err
		}
	}

	// One registry and one logger for the whole process: service, store,
	// and cluster record into the same /metrics namespace, and every log
	// line carries the node name.
	node := self
	if node == "" {
		node = ln.Addr().String()
	}
	reg := obs.NewRegistry()
	logger := obs.NewLeveledLogger(os.Stderr, node, level)

	// Accept connections immediately, answering 503 "recovering" until
	// the store has replayed its WAL and the service is built; then the
	// real handler is swapped in. A restarted node is thus always
	// reachable (healthz answers) but never serves half-recovered state.
	sw := newSwitchHandler(recoveringHandler())
	httpSrv := &http.Server{Handler: sw}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fail := func(err error) error {
		httpSrv.Close()
		return err
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fail(fmt.Errorf("debug listener: %w", err))
		}
		dbgSrv := &http.Server{Handler: debugHandler()}
		go func() { _ = dbgSrv.Serve(dln) }()
		defer dbgSrv.Close()
		logger.Info("debug listener serving pprof and expvar", "debug_addr", dln.Addr().String())
	}

	var backend store.Store
	if *dataDir != "" {
		fst, err := store.Open(*dataDir, store.Options{SegmentBytes: *walSegBytes, GroupCommit: *walGroupCommit})
		if err != nil {
			return fail(fmt.Errorf("opening data dir %s: %w", *dataDir, err))
		}
		defer fst.Close() // after srv.Close below: shutdown journals queued-job cancellations
		if *compactOnStart {
			if err := fst.Compact(); err != nil {
				return fail(fmt.Errorf("compacting WAL in %s: %w", *dataDir, err))
			}
		}
		st := fst.Stats()
		logger.Info("recovered store", "dir", *dataDir, "jobs", st.RecoveredJobs,
			"wal_segments", st.WALSegments, "tail_truncations", st.TailTruncations)
		backend = fst
	}

	srv := service.New(service.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheSize:         *cacheSize,
		SweepWorkers:      *sweepWorkers,
		Limits:            service.Limits{MaxN: *maxN, MaxPeriods: *maxPeriods},
		Store:             backend,
		ResumeInterrupted: *resumeInterr,
		JobIDPrefix:       idPrefix,
		Metrics:           reg,
		Logger:            logger,
		Node:              node,
		SLO:               slo,
	})
	defer srv.Close()

	handler := http.Handler(srv.Handler())
	if len(peerList) > 0 {
		router, err := cluster.New(cluster.Config{
			Peers: peerList, Self: self, Service: srv,
			Metrics: reg, Logger: logger,
		})
		if err != nil {
			return fail(err)
		}
		defer router.Close()
		handler = router
		logger.Info("joined cluster ring", "self", self, "job_id_prefix", idPrefix, "peers", len(peerList))
	}

	sw.swap(handler)
	logger.Info("serving", "addr", ln.Addr().String(),
		"workers", *workers, "queue", *queue, "cache", *cacheSize)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	return waitShutdown(ctx, errc, httpSrv, srv, logger)
}

// waitShutdown blocks until the listener fails or the context is
// cancelled, then drains in-flight work in dependency order.
func waitShutdown(ctx context.Context, errc <-chan error, httpSrv *http.Server, srv *service.Server, logger *slog.Logger) error {
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Cancel in-flight jobs first so open /stream responses terminate,
		// then drain the HTTP server.
		srv.Close()
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			return err
		}
		logger.Info("shut down")
		return nil
	}
}

// inferSelf picks this node's entry in the normalized peer list by
// matching the bound listener's port — and host, when both sides commit
// to one — so single-host clusters (distinct ports on loopback) need no
// -self flag. Ambiguity (several peers sharing the bound port, the
// normal shape for a multi-host cluster) is an error directing the
// operator to -self rather than a guess.
func inferSelf(peers []string, bound net.Addr) (string, error) {
	tcp, ok := bound.(*net.TCPAddr)
	if !ok {
		return "", fmt.Errorf("cannot infer -self from listener address %v; pass -self", bound)
	}
	boundPort := strconv.Itoa(tcp.Port)
	var matches []string
	for _, p := range peers {
		host, port, err := net.SplitHostPort(p)
		if err != nil || port != boundPort {
			continue
		}
		ip := net.ParseIP(host)
		switch {
		case tcp.IP.IsUnspecified():
			// Bound to all interfaces: any host with this port could be us.
			matches = append(matches, p)
		case ip != nil && ip.Equal(tcp.IP):
			matches = append(matches, p)
		case host == "localhost" && tcp.IP.IsLoopback():
			matches = append(matches, p)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return "", fmt.Errorf("no -peers entry matches the bound address %s; pass -self", bound)
	default:
		return "", fmt.Errorf("bound address %s matches %d -peers entries (%s); pass -self",
			bound, len(matches), strings.Join(matches, ", "))
	}
}
