// Command odeprotod serves the full paper pipeline — parse ODEs, rewrite
// to mappable form (§7), translate to a distributed protocol (§3/§6), and
// simulate at scale (§5) — as a long-running HTTP/JSON daemon with a
// bounded job queue, a worker pool, and a content-addressed result cache
// (see internal/service).
//
// Usage:
//
//	odeprotod -addr :8080
//	odeprotod -addr 127.0.0.1:9090 -workers 4 -queue 128 -cache 512
//	odeprotod -data /var/lib/odeprotod -compact-on-start -resume-interrupted
//
// With -data, job lifecycle transitions are journaled to a segmented,
// CRC-checksummed WAL and completed results are persisted as
// content-addressed blobs (internal/store), so a restarted daemon
// recovers its job list, warms the result cache from disk, and serves
// previously computed sweeps without re-simulating (see README.md
// "Durability").
//
// Quick tour (see README.md "Running the service" for the full schema):
//
//	curl -s localhost:8080/v1/healthz
//	curl -s localhost:8080/v1/compile -d '{"source": "x'"'"' = -x*y\ny'"'"' = x*y"}'
//	curl -s localhost:8080/v1/jobs -d '{"source": "x'"'"' = -x*y\ny'"'"' = x*y", "n": 10000, "periods": 50}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -s localhost:8080/v1/jobs/j000001/stream
//	curl -s localhost:8080/v1/jobs/j000001/figure.svg
//	curl -s localhost:8080/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"odeproto/internal/service"
	"odeproto/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "odeprotod:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until the context is cancelled or the
// listener fails. When ready is non-nil, the bound address is sent on it
// once the server is accepting connections (the end-to-end tests listen
// on 127.0.0.1:0 and need the resolved port).
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("odeprotod", flag.ContinueOnError)
	var (
		addr           = fs.String("addr", ":8080", "HTTP listen address")
		workers        = fs.Int("workers", 2, "jobs simulated concurrently")
		queue          = fs.Int("queue", 64, "bounded job-queue depth (full queue = 503)")
		cacheSize      = fs.Int("cache", 256, "content-addressed result cache capacity (results, LRU)")
		sweepWorkers   = fs.Int("sweep-workers", 0, "harness worker-pool size per job sweep (0 = all cores)")
		maxN           = fs.Int("max-n", 0, "per-job group-size limit (0 = service default)")
		maxPeriods     = fs.Int("max-periods", 0, "per-job period limit (0 = service default)")
		dataDir        = fs.String("data", "", "durable data directory: WAL-journaled jobs + persisted results (empty = in-memory only)")
		walSegBytes    = fs.Int64("wal-segment-bytes", 0, "rotate WAL segments beyond this size (0 = store default, 4 MiB)")
		compactOnStart = fs.Bool("compact-on-start", false, "compact the WAL after recovery, dropping superseded records")
		resumeInterr   = fs.Bool("resume-interrupted", false, "resubmit jobs the previous process left queued or mid-run (specs are recovered from the WAL)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; exit 0 like the old flag.Parse behavior
		}
		return err
	}

	var backend store.Store
	if *dataDir != "" {
		fst, err := store.Open(*dataDir, store.Options{SegmentBytes: *walSegBytes})
		if err != nil {
			return fmt.Errorf("opening data dir %s: %w", *dataDir, err)
		}
		defer fst.Close() // after srv.Close below: shutdown journals queued-job cancellations
		if *compactOnStart {
			if err := fst.Compact(); err != nil {
				return fmt.Errorf("compacting WAL in %s: %w", *dataDir, err)
			}
		}
		st := fst.Stats()
		log.Printf("odeprotod: recovered %d jobs from %s (%d WAL segments, %d torn-tail truncations)",
			st.RecoveredJobs, *dataDir, st.WALSegments, st.TailTruncations)
		backend = fst
	}

	srv := service.New(service.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheSize:         *cacheSize,
		SweepWorkers:      *sweepWorkers,
		Limits:            service.Limits{MaxN: *maxN, MaxPeriods: *maxPeriods},
		Store:             backend,
		ResumeInterrupted: *resumeInterr,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	log.Printf("odeprotod: serving on %s (%d workers, queue %d, cache %d)",
		ln.Addr(), *workers, *queue, *cacheSize)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Cancel in-flight jobs first so open /stream responses terminate,
		// then drain the HTTP server.
		srv.Close()
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			return err
		}
		log.Printf("odeprotod: shut down")
		return nil
	}
}
