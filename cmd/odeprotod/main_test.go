package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"odeproto/internal/core"
	"odeproto/internal/harness"
	"odeproto/internal/obs"
	"odeproto/internal/ode"
	"odeproto/internal/rewrite"
	"odeproto/internal/service"
	"odeproto/internal/sim"
)

// lvSource is the paper's Lotka–Volterra system (6), the majority-
// selection case study; it is outside the mappable class until the §7
// rewrite completes, homogenizes, and splits it into system (7).
const lvSource = "x' = 3*x - 3*x^2 - 6*x*y\ny' = 3*y - 3*y^2 - 6*x*y\n"

// startDaemonCtl boots odeprotod on a random port and returns its base
// URL plus an idempotent shutdown func, for tests that restart the daemon
// mid-test (it is also registered as a cleanup).
func startDaemonCtl(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}
	var once sync.Once
	shutdown := func() {
		once.Do(func() {
			cancel()
			select {
			case err := <-errc:
				if err != nil {
					t.Errorf("daemon shutdown: %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Error("daemon did not shut down")
			}
		})
	}
	t.Cleanup(shutdown)
	return "http://" + addr, shutdown
}

// startDaemon boots odeprotod on a random port and returns its base URL.
func startDaemon(t *testing.T, args ...string) string {
	t.Helper()
	base, _ := startDaemonCtl(t, args...)
	return base
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("bad body %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

func pollDone(t *testing.T, base, id string, timeout time.Duration) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st service.JobStatus
		if code := getJSON(t, base+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET job %s: %d", id, code)
		}
		switch st.Status {
		case service.StatusDone:
			return st
		case service.StatusFailed, service.StatusCancelled:
			t.Fatalf("job %s terminated %s: %s", id, st.Status, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.Status, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServiceEndToEnd is the acceptance test of the odeprotod subsystem:
// boot the daemon on a random port, POST the paper's Lotka–Volterra
// source as a sharded sweep, poll the job to completion, check the
// returned per-period counts byte-identical against a direct
// harness.Sweep run with the same seed and shard count, and verify an
// identical second POST is answered from the content-addressed cache
// without executing a new sweep.
func TestServiceEndToEnd(t *testing.T) {
	base := startDaemon(t, "-workers", "1")

	const (
		n       = 2000
		periods = 80
		seed    = 7
		shards  = 4
		pNorm   = 0.01
	)
	spec := map[string]any{
		"source":  lvSource,
		"p":       pNorm,
		"engine":  "sharded",
		"shards":  shards,
		"n":       n,
		"initial": map[string]int{"x": 1200, "y": 800},
		"periods": periods,
		"seed":    seed,
	}

	code, body := postJSON(t, base+"/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st service.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	done := pollDone(t, base, st.ID, 2*time.Minute)
	if done.Cached {
		t.Fatal("first run claims to be cached")
	}
	if done.Result == nil || len(done.Result.Runs) != 1 {
		t.Fatalf("unexpected result shape: %+v", done.Result)
	}
	serviceRun := done.Result.Runs[0]
	if len(serviceRun.Rows) != periods {
		t.Fatalf("service recorded %d rows, want %d", len(serviceRun.Rows), periods)
	}

	// Reproduce the run directly through the library: same compile
	// pipeline, same seed, same shard count, same recording rule.
	sys, err := ode.Parse(lvSource, nil)
	if err != nil {
		t.Fatal(err)
	}
	mappable, err := rewrite.MakeMappable(sys, "z")
	if err != nil {
		t.Fatal(err)
	}
	proto, err := core.Translate(mappable, core.Options{P: pNorm})
	if err != nil {
		t.Fatal(err)
	}
	states := proto.States
	if len(states) != len(done.Result.States) {
		t.Fatalf("service states %v vs direct %v", done.Result.States, states)
	}
	for i, s := range states {
		if done.Result.States[i] != string(s) {
			t.Fatalf("service states %v vs direct %v", done.Result.States, states)
		}
	}

	var direct []service.PeriodRow
	results, err := harness.Sweep([]harness.Job{{
		Name: "direct-lv",
		Seed: seed,
		New: func(jobSeed int64) (harness.Runner, error) {
			return harness.NewAgent(sim.Config{
				N: n, Protocol: proto,
				Initial: map[ode.Var]int{"x": 1200, "y": 800},
				Seed:    jobSeed, Shards: shards,
			})
		},
		Periods: periods,
		AfterStep: func(r harness.Runner, period int) {
			row := service.PeriodRow{Period: period, Counts: make([]int, len(states))}
			for i, s := range states {
				row.Counts[i] = r.Count(s)
			}
			direct = append(direct, row)
		},
	}}, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Killed != serviceRun.Killed {
		t.Fatalf("killed: service %d vs direct %d", serviceRun.Killed, results[0].Killed)
	}

	serviceJSON, err := json.Marshal(serviceRun.Rows)
	if err != nil {
		t.Fatal(err)
	}
	directJSON, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serviceJSON, directJSON) {
		t.Fatalf("service trajectory diverges from the direct harness.Sweep run:\nservice: %.200s\ndirect:  %.200s",
			serviceJSON, directJSON)
	}

	// The identical second POST must be a pure cache hit: answered done
	// on arrival, same bytes, and the sweep run counter stays at 1.
	var stats service.Stats
	if code := getJSON(t, base+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.SweepsExecuted != 1 {
		t.Fatalf("sweeps executed before the duplicate POST: %d, want 1", stats.SweepsExecuted)
	}

	code, body = postJSON(t, base+"/v1/jobs", spec)
	if code != http.StatusOK {
		t.Fatalf("duplicate submit: %d %s", code, body)
	}
	var st2 service.JobStatus
	if err := json.Unmarshal(body, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.Status != service.StatusDone || !st2.Cached {
		t.Fatalf("duplicate POST not served from cache: %+v", st2)
	}
	if st2.CacheKey != done.CacheKey {
		t.Fatal("duplicate POST produced a different cache key")
	}
	cached := pollDone(t, base, st2.ID, 10*time.Second)
	cachedJSON, err := json.Marshal(cached.Result.Runs[0].Rows)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cachedJSON, serviceJSON) {
		t.Fatal("cached result bytes differ from the original result")
	}

	if code := getJSON(t, base+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.SweepsExecuted != 1 {
		t.Fatalf("duplicate POST executed a sweep (counter %d)", stats.SweepsExecuted)
	}
	if stats.Cache.Hits < 1 {
		t.Fatalf("cache reported no hits: %+v", stats.Cache)
	}
}

// TestDaemonCompileAndFigure exercises the remaining endpoints through a
// real TCP round trip: compile, figure rendering, and stats.
func TestDaemonCompileAndFigure(t *testing.T) {
	base := startDaemon(t)

	code, body := postJSON(t, base+"/v1/compile", map[string]any{"source": "x' = -x*y\ny' = x*y\n"})
	if code != http.StatusOK {
		t.Fatalf("compile: %d %s", code, body)
	}
	var cr service.CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Protocol.Actions) != 1 || cr.Protocol.Actions[0].Kind != "sample" {
		t.Fatalf("unexpected compile output: %+v", cr.Protocol)
	}

	code, body = postJSON(t, base+"/v1/jobs", map[string]any{
		"source": "x' = -x*y\ny' = x*y\n", "n": 300, "periods": 20,
		"initial": map[string]int{"x": 290, "y": 10},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st service.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	pollDone(t, base, st.ID, time.Minute)

	resp, err := http.Get(base + "/v1/jobs/" + st.ID + "/figure.svg")
	if err != nil {
		t.Fatal(err)
	}
	svg, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !bytes.HasPrefix(svg, []byte("<svg")) {
		t.Fatalf("figure: %d %.60s", resp.StatusCode, svg)
	}
}

// TestCrashRecoveryEndToEnd is the acceptance test of the persistence
// subsystem: run a job against a -data dir, kill the daemon, corrupt the
// WAL tail the way an interrupted write would, restart (with compaction),
// and verify the result is served from disk — byte-identical, with no
// re-simulation.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	dataDir := t.TempDir()
	base, shutdown := startDaemonCtl(t, "-workers", "1", "-data", dataDir, "-wal-segment-bytes", "4096")

	spec := map[string]any{
		"source":  "x' = -x*y\ny' = x*y\n",
		"n":       500,
		"initial": map[string]int{"x": 480, "y": 20},
		"periods": 30,
		"seed":    11,
	}
	code, body := postJSON(t, base+"/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st service.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	done := pollDone(t, base, st.ID, time.Minute)

	resp, err := http.Get(base + "/v1/results/" + done.CacheKey)
	if err != nil {
		t.Fatal(err)
	}
	resultBody1, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result before restart: %d %v", resp.StatusCode, err)
	}
	doneJSON, err := json.Marshal(done.Result)
	if err != nil {
		t.Fatal(err)
	}

	shutdown()

	// Simulate the torn write a kill -9 mid-append leaves behind: garbage
	// bytes on the newest WAL segment's tail.
	segs, err := filepath.Glob(filepath.Join(dataDir, "wal", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s: %v", dataDir, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x2c, 0x00, 0x00, 0x00, 0xba, 0xad, 0xf0, 0x0d, '{', '"'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// -resume-interrupted is exercised for wiring here (this crash left
	// no interrupted jobs — the sweep completed before the kill); the
	// resubmission behaviour itself is covered by the service-level
	// recovery tests.
	base2, _ := startDaemonCtl(t, "-workers", "1", "-data", dataDir, "-compact-on-start", "-resume-interrupted")

	// The job list survived the crash and the torn tail.
	var list []service.JobStatus
	if code := getJSON(t, base2+"/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("GET jobs after restart: %d", code)
	}
	foundRecovered := false
	for _, j := range list {
		if j.ID == st.ID && j.Status == service.StatusDone {
			foundRecovered = true
		}
	}
	if !foundRecovered {
		t.Fatalf("job %s not recovered as done: %+v", st.ID, list)
	}

	// The identical spec is answered from disk: 200 done-on-arrival,
	// byte-identical result, and the fresh process still reports zero
	// sweeps executed.
	code, body = postJSON(t, base2+"/v1/jobs", spec)
	if code != http.StatusOK {
		t.Fatalf("resubmit after restart: %d %s", code, body)
	}
	var st2 service.JobStatus
	if err := json.Unmarshal(body, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.Status != service.StatusDone || !st2.Cached || st2.CacheKey != done.CacheKey {
		t.Fatalf("resubmit after restart: %+v", st2)
	}
	replayed := pollDone(t, base2, st2.ID, 10*time.Second)
	replayedJSON, err := json.Marshal(replayed.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(replayedJSON, doneJSON) {
		t.Fatal("result after restart differs from the pre-crash result")
	}

	resp, err = http.Get(base2 + "/v1/results/" + done.CacheKey)
	if err != nil {
		t.Fatal(err)
	}
	resultBody2, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result after restart: %d %v", resp.StatusCode, err)
	}
	if !bytes.Equal(resultBody1, resultBody2) {
		t.Fatal("/v1/results body not byte-identical across the restart")
	}

	var stats service.Stats
	if code := getJSON(t, base2+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats after restart: %d", code)
	}
	if stats.SweepsExecuted != 0 {
		t.Fatalf("restarted daemon executed %d sweeps serving a persisted result", stats.SweepsExecuted)
	}
	if stats.Store.Backend != "file" || stats.Store.RecoveredJobs < 1 {
		t.Fatalf("store stats after restart: %+v", stats.Store)
	}
	if stats.Store.TailTruncations != 1 {
		t.Fatalf("tail truncations = %d, want 1 (the injected torn record)", stats.Store.TailTruncations)
	}
	if stats.Store.Compactions != 1 || stats.Store.WALSegments != 1 {
		t.Fatalf("-compact-on-start did not compact: %+v", stats.Store)
	}
	if stats.ResumedJobs != 0 {
		t.Fatalf("resumed_jobs = %d for a cleanly finished job", stats.ResumedJobs)
	}
}

// TestClusterEndToEnd is the multi-node smoke test: three real daemons
// on loopback sharing one -peers list, the same spec POSTed through each
// of them, exactly one sweep executed cluster-wide, and the result
// readable byte-identically through every node.
func TestClusterEndToEnd(t *testing.T) {
	// Reserve three loopback ports, then hand them to the daemons: the
	// shared -peers list must be known before any node starts, so the
	// listen addresses cannot stay ":0".
	addrs := make([]string, 3)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	peers := strings.Join(addrs, ",")
	bases := make([]string, len(addrs))
	for i, addr := range addrs {
		// -self is deliberately omitted on a distinct-port loopback
		// cluster: the daemon infers it from the bound address. Each node
		// gets a -data dir so the scrape below covers the WAL and blob
		// metric families too.
		bases[i], _ = startDaemonCtl(t, "-addr", addr, "-workers", "1", "-peers", peers, "-data", t.TempDir())
	}

	// Nodes started first probed peers that weren't listening yet; wait
	// for a probe round to mark everyone up before asserting on health.
	for deadline := time.Now().Add(15 * time.Second); ; time.Sleep(50 * time.Millisecond) {
		allUp := true
		for _, base := range bases {
			var stats struct {
				Cluster struct {
					Peers []struct {
						Alive bool `json:"alive"`
					} `json:"peers"`
				} `json:"cluster"`
			}
			if code := getJSON(t, base+"/v1/stats", &stats); code != http.StatusOK {
				t.Fatalf("stats: %d", code)
			}
			for _, p := range stats.Cluster.Peers {
				allUp = allUp && p.Alive
			}
		}
		if allUp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peers never all reported alive")
		}
	}

	spec := map[string]any{
		"source":  "x' = -x*y\ny' = x*y\n",
		"n":       400,
		"initial": map[string]int{"x": 380, "y": 20},
		"periods": 25,
		"seed":    3,
	}
	key := ""
	for i, base := range bases {
		code, body := postJSON(t, base+"/v1/jobs", spec)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit via node %d: %d %s", i, code, body)
		}
		var st service.JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if key == "" {
			key = st.CacheKey
		} else if st.CacheKey != key {
			t.Fatalf("node %d filed the spec under %s, want %s", i, st.CacheKey, key)
		}
		// The ID is routable from any node, not just the one POSTed to.
		pollDone(t, bases[(i+1)%len(bases)], st.ID, time.Minute)
	}

	var first []byte
	var sweeps int64
	wantETag := `"` + key + `"`
	for i, base := range bases {
		resp, err := http.Get(base + "/v1/results/" + key)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET result via node %d: %d %v", i, resp.StatusCode, err)
		}
		// The content address is the validator on every node — including
		// the ones that proxied this GET to the key's owner.
		if got := resp.Header.Get("ETag"); got != wantETag {
			t.Fatalf("result ETag via node %d = %q, want %q", i, got, wantETag)
		}
		if first == nil {
			first = body
		} else if !bytes.Equal(first, body) {
			t.Fatalf("result bytes differ between nodes")
		}

		// A conditional GET with the current validator answers 304 through
		// any node: at least two of these three hops are forwarded, so this
		// pins If-None-Match propagation across the proxy.
		req, err := http.NewRequest(http.MethodGet, base+"/v1/results/"+key, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", wantETag)
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		notModifiedBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotModified || len(notModifiedBody) != 0 {
			t.Fatalf("conditional GET via node %d: %d with %d bytes, want bodiless 304", i, resp.StatusCode, len(notModifiedBody))
		}

		var stats struct {
			SweepsExecuted int64 `json:"sweeps_executed"`
			Cluster        struct {
				Self  string `json:"self"`
				Ring  string `json:"ring"`
				Peers []struct {
					Alive bool `json:"alive"`
				} `json:"peers"`
			} `json:"cluster"`
		}
		if code := getJSON(t, base+"/v1/stats", &stats); code != http.StatusOK {
			t.Fatalf("stats via node %d: %d", i, code)
		}
		if stats.Cluster.Self == "" || len(stats.Cluster.Peers) != len(addrs) {
			t.Fatalf("node %d stats carry no cluster section: %+v", i, stats.Cluster)
		}
		for pi, p := range stats.Cluster.Peers {
			if !p.Alive {
				t.Fatalf("node %d sees peer %d down: %+v", i, pi, stats.Cluster)
			}
		}
		sweeps += stats.SweepsExecuted
	}
	if sweeps != 1 {
		t.Fatalf("cluster executed %d sweeps for one spec, want 1", sweeps)
	}

	// Scrape /metrics on all three nodes: the exposition must parse, the
	// histograms must be well-formed, every required family must be
	// present, and the sweep counter must agree with the JSON stats
	// (exactly one execution cluster-wide). CI's cluster-e2e step runs
	// this test, so a malformed or incomplete exposition fails the build.
	required := []string{
		"odeproto_jobs_submitted_total",
		"odeproto_jobs_coalesced_total",
		"odeproto_sweeps_executed_total",
		"odeproto_queue_depth",
		"odeproto_queue_capacity",
		"odeproto_queue_wait_seconds",
		"odeproto_cache_hits_total",
		"odeproto_cache_misses_total",
		"odeproto_cache_size",
		"odeproto_sweep_latency_seconds",
		"odeproto_wal_records_total",
		"odeproto_wal_syncs_total",
		"odeproto_wal_bytes",
		"odeproto_store_results_written_total",
		"odeproto_cluster_owner_local_total",
		"odeproto_cluster_forwarded_total",
		"odeproto_cluster_forward_latency_seconds",
		"odeproto_cluster_peer_alive",
		"odeproto_metrics_render_errors_total",
		"odeproto_jobs_rejected_total",
		"odeproto_job_duration_seconds",
		"odeproto_slo_state",
		"odeproto_slo_burn_rate",
	}
	var metricSweeps float64
	exemplarTraces := make(map[string]struct{})
	for i, base := range bases {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics via node %d: %d %v", i, resp.StatusCode, err)
		}
		fams, err := obs.ParseExposition(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("node %d serves a malformed exposition: %v\n%s", i, err, body)
		}
		for _, name := range required {
			if _, ok := fams[name]; !ok {
				t.Errorf("node %d /metrics lacks required family %s", i, name)
			}
		}
		for _, fam := range fams {
			if fam.Type == "histogram" {
				// CheckHistogram also validates every exemplar: in-bucket
				// value, well-formed trace ID.
				if _, err := obs.CheckHistogram(fam); err != nil {
					t.Errorf("node %d %s: %v", i, fam.Name, err)
				}
				for _, s := range fam.Samples {
					if s.Exemplar != nil {
						exemplarTraces[s.Exemplar.Labels["trace_id"]] = struct{}{}
					}
				}
			}
		}
		if v, ok := fams["odeproto_sweeps_executed_total"].Value("odeproto_sweeps_executed_total", nil); ok {
			metricSweeps += v
		}
		if v, ok := fams["odeproto_metrics_render_errors_total"].Value("odeproto_metrics_render_errors_total", nil); !ok || v != 0 {
			t.Errorf("node %d reports %g render errors", i, v)
		}
	}
	if metricSweeps != float64(sweeps) {
		t.Fatalf("/metrics counts %g sweeps cluster-wide, /v1/stats counted %d", metricSweeps, sweeps)
	}

	// Every exemplar scraped anywhere in the cluster must resolve: its
	// trace ID belongs to a known job whose trace endpoint serves the
	// same ID, from any node.
	if len(exemplarTraces) == 0 {
		t.Fatal("no histogram bucket anywhere in the cluster carries an exemplar")
	}
	traceToJob := make(map[string]string)
	for i, base := range bases {
		var list []service.JobStatus
		if code := getJSON(t, base+"/v1/jobs", &list); code != http.StatusOK {
			t.Fatalf("GET jobs via node %d: %d", i, code)
		}
		for _, j := range list {
			if j.Trace != "" {
				traceToJob[j.Trace] = j.ID
			}
		}
	}
	for trace := range exemplarTraces {
		id, ok := traceToJob[trace]
		if !ok {
			t.Errorf("exemplar trace %s matches no job in the cluster", trace)
			continue
		}
		var tr service.TraceStatus
		if code := getJSON(t, bases[0]+"/v1/jobs/"+id+"/trace", &tr); code != http.StatusOK {
			t.Errorf("trace %s (job %s) does not resolve: %d", trace, id, code)
		} else if tr.Trace != trace {
			t.Errorf("job %s trace endpoint reports %s, exemplar carried %s", id, tr.Trace, trace)
		}
	}

	// GET /v1/slo answers on every node: a healthy cluster reports ok
	// overall, with the compiled-in latency and error-rate SLOs each
	// evaluated over their three windows.
	for i, base := range bases {
		var report service.SLOReport
		if code := getJSON(t, base+"/v1/slo", &report); code != http.StatusOK {
			t.Fatalf("GET /v1/slo via node %d: %d", i, code)
		}
		if report.State != service.SLOOk {
			t.Errorf("node %d SLO state = %s, want ok: %+v", i, report.State, report)
		}
		if len(report.SLOs) != 2 {
			t.Fatalf("node %d reports %d SLOs, want the 2 defaults", i, len(report.SLOs))
		}
		for _, s := range report.SLOs {
			if s.State != service.SLOOk {
				t.Errorf("node %d SLO %s state = %s, want ok", i, s.Name, s.State)
			}
			if len(s.Windows) != 3 {
				t.Errorf("node %d SLO %s evaluated %d windows, want 3", i, s.Name, len(s.Windows))
			}
			if s.Name == "job_latency" {
				for _, w := range s.Windows {
					if w.Total > 0 && (w.P50 <= 0 || w.P95 <= 0 || w.P99 <= 0) {
						t.Errorf("node %d latency window %s has observations but no quantiles: %+v", i, w.Window, w)
					}
				}
			}
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-bogus"}, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
	// -h prints usage and succeeds without starting a server.
	if err := run(context.Background(), []string{"-h"}, nil); err != nil {
		t.Fatalf("-h returned an error: %v", err)
	}
	// Flag validation happens before the listener opens: a bad log level,
	// a missing SLO config file, and an invalid SLO spec all fail fast.
	if err := run(context.Background(), []string{"-log-level", "verbose"}, nil); err == nil {
		t.Fatal("bad -log-level accepted")
	}
	if err := run(context.Background(), []string{"-slo-config", filepath.Join(t.TempDir(), "missing.json")}, nil); err == nil {
		t.Fatal("missing -slo-config file accepted")
	}
	badSLO := filepath.Join(t.TempDir(), "slo.json")
	if err := os.WriteFile(badSLO, []byte(`{"slos":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-slo-config", badSLO}, nil); err == nil {
		t.Fatal("invalid -slo-config accepted")
	}
	// A busy port must surface as an error, not a hang.
	base := startDaemon(t)
	addr := base[len("http://"):]
	errc := make(chan error, 1)
	go func() { errc <- run(context.Background(), []string{"-addr", addr}, nil) }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("second listener on a busy port succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("busy-port run did not return")
	}
}
