package main

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRecoveringHandler pins the readiness distinction: until the real
// mux is swapped in, every endpoint — healthz included — answers 503
// {"status":"recovering"}, so cluster probers (which require a 200)
// keep the node marked down while WAL replay and cache warming run.
func TestRecoveringHandler(t *testing.T) {
	sw := newSwitchHandler(recoveringHandler())
	for _, path := range []string{"/v1/healthz", "/v1/jobs", "/metrics"} {
		rec := httptest.NewRecorder()
		sw.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("GET %s while recovering: %d, want 503", path, rec.Code)
		}
		if body := rec.Body.String(); !strings.Contains(body, `"recovering"`) {
			t.Fatalf("recovering body %q does not say so", body)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("recovering content type %q", ct)
		}
	}

	sw.swap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))
	rec := httptest.NewRecorder()
	sw.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after swap: %d, want 200", rec.Code)
	}
}

// TestDebugListener boots the daemon with -debug-addr and checks that
// pprof and expvar answer there — and only there: the public listener
// must not expose them.
func TestDebugListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dbgAddr := ln.Addr().String()
	ln.Close()

	base := startDaemon(t, "-debug-addr", dbgAddr)

	get := func(url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("http://" + dbgAddr + "/debug/vars"); code != http.StatusOK ||
		!strings.Contains(body, "memstats") {
		t.Fatalf("expvar on the debug listener: %d %.80s", code, body)
	}
	if code, body := get("http://" + dbgAddr + "/debug/pprof/"); code != http.StatusOK ||
		!strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index on the debug listener: %d %.80s", code, body)
	}

	// The public listener serves the API, never the debug surface.
	if code, _ := get(base + "/debug/vars"); code != http.StatusNotFound {
		t.Fatalf("expvar leaked onto the public listener: %d", code)
	}
	if code, _ := get(base + "/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof leaked onto the public listener: %d", code)
	}
}
