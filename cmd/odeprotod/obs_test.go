package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odeproto/internal/obs"
	"odeproto/internal/service"
)

// TestRecoveringHandler pins the readiness distinction: until the real
// mux is swapped in, every endpoint — healthz included — answers 503
// {"status":"recovering"}, so cluster probers (which require a 200)
// keep the node marked down while WAL replay and cache warming run.
func TestRecoveringHandler(t *testing.T) {
	sw := newSwitchHandler(recoveringHandler())
	for _, path := range []string{"/v1/healthz", "/v1/jobs", "/metrics"} {
		rec := httptest.NewRecorder()
		sw.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("GET %s while recovering: %d, want 503", path, rec.Code)
		}
		if body := rec.Body.String(); !strings.Contains(body, `"recovering"`) {
			t.Fatalf("recovering body %q does not say so", body)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("recovering content type %q", ct)
		}
	}

	sw.swap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))
	rec := httptest.NewRecorder()
	sw.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after swap: %d, want 200", rec.Code)
	}
}

// TestDebugListener boots the daemon with -debug-addr and checks that
// pprof and expvar answer there — and only there: the public listener
// must not expose them.
func TestDebugListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dbgAddr := ln.Addr().String()
	ln.Close()

	base := startDaemon(t, "-debug-addr", dbgAddr)

	get := func(url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("http://" + dbgAddr + "/debug/vars"); code != http.StatusOK ||
		!strings.Contains(body, "memstats") {
		t.Fatalf("expvar on the debug listener: %d %.80s", code, body)
	}
	if code, body := get("http://" + dbgAddr + "/debug/pprof/"); code != http.StatusOK ||
		!strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index on the debug listener: %d %.80s", code, body)
	}

	// The public listener serves the API, never the debug surface.
	if code, _ := get(base + "/debug/vars"); code != http.StatusNotFound {
		t.Fatalf("expvar leaked onto the public listener: %d", code)
	}
	if code, _ := get(base + "/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof leaked onto the public listener: %d", code)
	}
}

// TestLogLevelContract pins the -log-level surface: the flag's "info"
// default maps to slog.LevelInfo (so debug lines stay off unless asked
// for), every documented level parses, and anything else is an error
// the daemon refuses to start on.
func TestLogLevelContract(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError,
		"INFO": slog.LevelInfo, // case-insensitive
	}
	for in, want := range cases {
		got, err := obs.ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := obs.ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}

	// The default level suppresses debug records and passes info.
	var buf bytes.Buffer
	level, _ := obs.ParseLevel("info")
	logger := obs.NewLeveledLogger(&buf, "n1", level)
	logger.Debug("hidden")
	logger.Info("shown")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Fatalf("info-level logger output:\n%s", out)
	}

	buf.Reset()
	level, _ = obs.ParseLevel("error")
	logger = obs.NewLeveledLogger(&buf, "n1", level)
	logger.Warn("hidden")
	logger.Error("shown")
	out = buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Fatalf("error-level logger output:\n%s", out)
	}
}

// TestSLOConfigFlag boots the daemon with a custom -slo-config and
// checks GET /v1/slo evaluates exactly the configured SLOs.
func TestSLOConfigFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slo.json")
	spec := `{"eval_interval":"1s","slos":[{"name":"custom_latency","indicator":"latency",
		"objective":0.95,"threshold_seconds":10,"short_window":"1m","mid_window":"5m",
		"long_window":"30m","page_burn_rate":10,"warn_burn_rate":2}]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	base := startDaemon(t, "-slo-config", path)

	resp, err := http.Get(base + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/slo: %d %v", resp.StatusCode, err)
	}
	var report service.SLOReport
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatalf("decoding /v1/slo: %v\n%s", err, body)
	}
	if len(report.SLOs) != 1 || report.SLOs[0].Name != "custom_latency" {
		t.Fatalf("report does not reflect the configured SLO:\n%s", body)
	}
	if report.State != service.SLOOk {
		t.Fatalf("idle daemon SLO state = %s, want ok", report.State)
	}
}
