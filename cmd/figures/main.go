// Command figures regenerates every figure of the paper's evaluation
// (Figures 2 and 4–12) plus the in-text quantitative results (R1–R4),
// writing gnuplot-style .dat files and SVG renderings into the output
// directory.
//
// By default the experiments run at the paper's scales (up to 100,000
// hosts and 10,000 periods; a few minutes total). -quick runs reduced
// scales suitable for CI. Sweep-shaped experiments fan out across
// -workers cores through the harness scheduler; results are identical at
// any worker count.
//
// Usage:
//
//	figures [-out out/] [-quick] [-only fig5,fig6] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"odeproto/internal/churn"
	"odeproto/internal/endemic"
	"odeproto/internal/epidemic"
	"odeproto/internal/harness"
	"odeproto/internal/lv"
	"odeproto/internal/ode"
	"odeproto/internal/plot"
	"odeproto/internal/replica"
	"odeproto/internal/sim"
	"odeproto/internal/solver"
)

type figureFunc func(outDir string, quick bool) error

var figures = []struct {
	name string
	desc string
	fn   figureFunc
}{
	{"fig2", "endemic phase portrait (stable spiral)", fig2},
	{"fig4", "LV phase portrait (bistable)", fig4},
	{"fig5", "endemic massive failure: populations", fig5and6},
	{"fig7", "endemic analysis vs measured", fig7},
	{"fig8", "endemic replica untraceability scatter", fig8},
	{"fig9", "endemic churn: populations and transitions", fig9and10},
	{"fig11", "LV convergence to initial majority", fig11},
	{"fig12", "LV convergence under massive failure", fig12},
	{"supp-attack", "directed attack: endemic survival vs staleness", suppAttack},
	{"supp-views", "partial membership views vs equilibrium accuracy", suppViews},
	{"supp-margin", "LV majority accuracy vs initial margin", suppMargin},
	{"r1", "epidemic O(log N) rounds", r1},
	{"r2", "longevity of object replicas", r2},
	{"r3", "reality check (bandwidth, stints)", r3},
	{"r4", "LV convergence complexity", r4},
}

func main() {
	var (
		out     = flag.String("out", "out", "output directory")
		quick   = flag.Bool("quick", false, "reduced scales for CI")
		only    = flag.String("only", "", "comma-separated subset, e.g. fig5,fig11")
		workers = flag.Int("workers", 0, "sweep worker-pool size (0 = all cores)")
		shards  = flag.Int("shards", 0, "agent-engine RNG shards K (0/1 = serial; fixed K is reproducible at any worker count)")
	)
	flag.Parse()
	harness.SetDefaultWorkers(*workers)
	harness.SetDefaultShards(*shards)
	want := map[string]bool{}
	for _, n := range strings.Split(*only, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	failed := 0
	for _, f := range figures {
		if len(want) > 0 && !want[f.name] {
			continue
		}
		start := time.Now()
		fmt.Printf("== %s: %s\n", f.name, f.desc)
		if err := f.fn(*out, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", f.name, err)
			failed++
			continue
		}
		fmt.Printf("   done in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// fig2: endemic phase portrait, N = 1000, α = 0.01, β = 4 (b = 2),
// γ = 1.0, seven initial points.
func fig2(out string, quick bool) error {
	periods := 5000
	if quick {
		periods = 800
	}
	p := endemic.Params{B: 2, Gamma: 1.0, Alpha: 0.01}
	trs, err := endemic.PhasePortrait(p, endemic.Figure2InitialPoints(), periods, 5, 2004)
	if err != nil {
		return err
	}
	chart := plot.NewChart("Fig 2: Endemic Phase Portrait (stable spiral)", "Num. X", "Num. Y")
	for i, tr := range trs {
		name := fmt.Sprintf("(%d,%d,%d)", tr.Initial.X, tr.Initial.Y, tr.Initial.Z)
		chart.AddLine(name, tr.Xs, tr.Ys)
		if err := plot.WriteDAT(filepath.Join(out, fmt.Sprintf("fig2_traj%d.dat", i)),
			[]string{"X", "Y"}, tr.Xs, tr.Ys); err != nil {
			return err
		}
	}
	// Overlay the ODE trajectory from the first initial point.
	sys := endemic.System(p.Beta(), p.Gamma, p.Alpha)
	tr, err := solver.RK4(solver.FromSystem(sys), []float64{0.999, 0.001, 0}, 0, float64(periods), 0.05)
	if err != nil {
		return err
	}
	xs := tr.Component(0)
	ys := tr.Component(1)
	for i := range xs {
		xs[i] *= 1000
		ys[i] *= 1000
	}
	chart.AddLine("ODE (999,1,0)", xs, ys)
	a := endemic.Analyze(p.Beta(), p.Gamma, p.Alpha)
	fmt.Printf("   equilibrium (X,Y,Z) = (%.1f, %.1f, %.1f), class = %s\n",
		1000*a.Equilibrium.Receptive, 1000*a.Equilibrium.Stash, 1000*a.Equilibrium.Averse, a.Class)
	return chart.WriteSVG(filepath.Join(out, "fig2.svg"))
}

// fig4: LV phase portrait, N = 1000, seven initial points.
func fig4(out string, quick bool) error {
	periods, pNorm := 6000, lv.DefaultP
	if quick {
		periods, pNorm = 2500, 0.05
	}
	trs, err := lv.PhasePortrait(1000, pNorm, lv.Figure4InitialPoints(), periods, 10, 2004)
	if err != nil {
		return err
	}
	chart := plot.NewChart("Fig 4: LV Phase Portrait", "Num. X", "Num. Y")
	for i, tr := range trs {
		name := fmt.Sprintf("(%d,%d,%d)", tr.X0, tr.Y0, tr.Z0)
		chart.AddLine(name, tr.Xs, tr.Ys)
		if err := plot.WriteDAT(filepath.Join(out, fmt.Sprintf("fig4_traj%d.dat", i)),
			[]string{"X", "Y"}, tr.Xs, tr.Ys); err != nil {
			return err
		}
		final := fmt.Sprintf("(%.0f,%.0f)", tr.Xs[len(tr.Xs)-1], tr.Ys[len(tr.Ys)-1])
		fmt.Printf("   start (%d,%d,%d) -> final %s\n", tr.X0, tr.Y0, tr.Z0, final)
	}
	return chart.WriteSVG(filepath.Join(out, "fig4.svg"))
}

// fig5and6: N = 100,000, b = 2, α = 10⁻⁶, γ = 10⁻³; 50% massive failure
// at t = 5000; Figure 5 plots populations over [4000, 10000], Figure 6 the
// file flux of the same run.
func fig5and6(out string, quick bool) error {
	cfg := endemic.MassiveFailureConfig{
		N:          100000,
		Params:     endemic.Params{B: 2, Gamma: 1e-3, Alpha: 1e-6},
		FailAt:     5000,
		FailFrac:   0.5,
		Periods:    10000,
		RecordFrom: 4000,
		Seed:       2004,
	}
	if quick {
		cfg.N = 20000
		cfg.FailAt = 500
		cfg.Periods = 1000
		cfg.RecordFrom = 400
		cfg.Params = endemic.Params{B: 2, Gamma: 1e-2, Alpha: 1e-5}
	}
	res, err := endemic.RunMassiveFailure(cfg)
	if err != nil {
		return err
	}
	if err := plot.WriteDAT(filepath.Join(out, "fig5.dat"),
		[]string{"time", "stash", "receptive", "averse"},
		res.Times, res.Stash, res.Receptive, res.Averse); err != nil {
		return err
	}
	c5 := plot.NewChart("Fig 5: Endemic Protocol - Massive Failures", "Time", "Count (alive)")
	c5.AddLine("Stash:Alive", res.Times, res.Stash)
	c5.AddLine("Rcptv:Alive", res.Times, res.Receptive)
	if err := c5.WriteSVG(filepath.Join(out, "fig5.svg")); err != nil {
		return err
	}
	if err := plot.WriteDAT(filepath.Join(out, "fig6.dat"),
		[]string{"time", "flux"}, res.Times, res.Flux); err != nil {
		return err
	}
	c6 := plot.NewChart("Fig 6: Endemic Protocol - File Flux Rate", "Time", "Rcptv->Stash per period")
	c6.AddLine("Rcptv->Stash", res.Times, res.Flux)
	if err := c6.WriteSVG(filepath.Join(out, "fig6.svg")); err != nil {
		return err
	}
	preIdx := cfg.FailAt - cfg.RecordFrom - 1
	if preIdx < 0 || preIdx >= len(res.Stash) {
		preIdx = 0
	}
	fmt.Printf("   killed %d; stash before/after: %.0f / %.0f\n",
		res.Killed, res.Stash[preIdx], res.Stash[len(res.Stash)-1])
	return nil
}

// fig7: analysis vs measured populations for N ∈ {12500, ..., 100000},
// b = 2, γ = 0.1, α = 0.001, medians over a 2000-period window.
func fig7(out string, quick bool) error {
	ns := []int{12500, 25000, 50000, 100000}
	warmup, window := 1000, 2000
	if quick {
		ns = []int{12500, 25000}
		warmup, window = 500, 500
	}
	p := endemic.Params{B: 2, Gamma: 0.1, Alpha: 0.001}
	points, err := endemic.RunEquilibriumSweep(ns, p, warmup, window, 2004)
	if err != nil {
		return err
	}
	var xs, rcptvMed, rcptvAna, stashMed, stashAna, rcptvMin, rcptvMax, stashMin, stashMax []float64
	fmt.Println("   N      #Rcptv(analysis) #Rcptv(measured) #Stash(analysis) #Stash(measured)")
	for _, pt := range points {
		xs = append(xs, float64(pt.N))
		rcptvMed = append(rcptvMed, pt.ReceptiveMeasured.Median)
		rcptvMin = append(rcptvMin, pt.ReceptiveMeasured.Min)
		rcptvMax = append(rcptvMax, pt.ReceptiveMeasured.Max)
		rcptvAna = append(rcptvAna, pt.ReceptiveAnalysis)
		stashMed = append(stashMed, pt.StashMeasured.Median)
		stashMin = append(stashMin, pt.StashMeasured.Min)
		stashMax = append(stashMax, pt.StashMeasured.Max)
		stashAna = append(stashAna, pt.StashAnalysis)
		fmt.Printf("   %-6d %-16.1f %-16.1f %-16.1f %-16.1f\n",
			pt.N, pt.ReceptiveAnalysis, pt.ReceptiveMeasured.Median,
			pt.StashAnalysis, pt.StashMeasured.Median)
	}
	if err := plot.WriteDAT(filepath.Join(out, "fig7.dat"),
		[]string{"N", "rcptv_analysis", "rcptv_median", "rcptv_min", "rcptv_max",
			"stash_analysis", "stash_median", "stash_min", "stash_max"},
		xs, rcptvAna, rcptvMed, rcptvMin, rcptvMax, stashAna, stashMed, stashMin, stashMax); err != nil {
		return err
	}
	chart := plot.NewChart("Fig 7: Accuracy of Continuous Time Analysis", "Number of Hosts", "Count")
	chart.AddLine("#Rcptvs (analysis)", xs, rcptvAna)
	chart.AddLine("#Rcptvs (measured)", xs, rcptvMed)
	chart.AddLine("#Stshrs (analysis)", xs, stashAna)
	chart.AddLine("#Stshrs (measured)", xs, stashMed)
	return chart.WriteSVG(filepath.Join(out, "fig7.svg"))
}

// fig8: stasher scatter over periods [1000, 1200], N = 1000, b = 2,
// γ = 0.1. The caption's α = 0.001 is inconsistent with its own quoted
// stable stasher count (88.63, one recruitment per 40.6 s), which
// corresponds to α = 0.01; we use α = 0.01.
func fig8(out string, quick bool) error {
	warmup, window := 1000, 200
	if quick {
		warmup = 300
	}
	p := endemic.Params{B: 2, Gamma: 0.1, Alpha: 0.01}
	res, err := endemic.RunUntraceability(1000, p, warmup, window, 2004)
	if err != nil {
		return err
	}
	if err := plot.WriteDAT(filepath.Join(out, "fig8.dat"),
		[]string{"time", "hostID"}, res.Scatter.Xs, res.Scatter.Ys); err != nil {
		return err
	}
	chart := plot.NewChart("Fig 8: Replica Untraceability and Load Balancing", "Time", "Host ID")
	chart.AddScatter("All Stashers", res.Scatter.Xs, res.Scatter.Ys)
	eq := endemic.StableEquilibrium(p.Beta(), p.Gamma, p.Alpha)
	fmt.Printf("   mean stashers %.1f (analysis %.2f), time-host correlation %.4f, fairness CV %.2f\n",
		res.MeanStashers, 1000*eq.Stash, res.TimeHostCorrelation, res.Fairness)
	return chart.WriteSVG(filepath.Join(out, "fig8.svg"))
}

// fig9and10: endemic under Overnet-calibrated churn, N = 2000, b = 32,
// γ = 0.1, α = 0.005, 6-minute periods, recorded hours 150–170.
func fig9and10(out string, quick bool) error {
	hours, from, to := 170.0, 150.0, 170.0
	if quick {
		hours, from, to = 40, 20, 40
	}
	trace, err := churn.Synthesize(2000, hours, 2004, churn.Config{})
	if err != nil {
		return err
	}
	res, err := endemic.RunChurn(endemic.ChurnConfig{
		N:              2000,
		Params:         endemic.Params{B: 32, Gamma: 0.1, Alpha: 0.005},
		Trace:          trace,
		PeriodsPerHour: 10,
		RecordFromHour: from,
		RecordToHour:   to,
		Seed:           2004,
	})
	if err != nil {
		return err
	}
	if err := plot.WriteDAT(filepath.Join(out, "fig9.dat"),
		[]string{"hour", "stash", "receptive", "averse"},
		res.Hours, res.Stash, res.Receptive, res.Averse); err != nil {
		return err
	}
	c9 := plot.NewChart("Fig 9: Endemic Protocol under Host Churn (populations)", "Time (Hours)", "Count (alive)")
	c9.AddLine("Stash:Alive", res.Hours, res.Stash)
	c9.AddLine("Rcptv:Alive", res.Hours, res.Receptive)
	c9.AddLine("Avers:Alive", res.Hours, res.Averse)
	if err := c9.WriteSVG(filepath.Join(out, "fig9.svg")); err != nil {
		return err
	}
	if err := plot.WriteDAT(filepath.Join(out, "fig10.dat"),
		[]string{"hour", "rcptv_to_stash", "stash_to_averse", "averse_to_rcptv"},
		res.Hours, res.RcptvToStash, res.StashToAverse, res.AverseToRcptv); err != nil {
		return err
	}
	c10 := plot.NewChart("Fig 10: Endemic Protocol under Host Churn (transitions)", "Time (Hours)", "Transitions per period")
	c10.AddLine("Rcptv->Stash", res.Hours, res.RcptvToStash)
	c10.AddLine("Stash->Avers", res.Hours, res.StashToAverse)
	c10.AddLine("Avers->Rcptv", res.Hours, res.AverseToRcptv)
	if err := c10.WriteSVG(filepath.Join(out, "fig10.svg")); err != nil {
		return err
	}
	var stashMin, stashMax float64 = 1 << 30, 0
	for _, s := range res.Stash {
		if s < stashMin {
			stashMin = s
		}
		if s > stashMax {
			stashMax = s
		}
	}
	fmt.Printf("   mean alive %.0f; stash range [%.0f, %.0f] (never zero: %v)\n",
		res.MeanAlive, stashMin, stashMax, stashMin > 0)
	return nil
}

// fig11: LV convergence, N = 100,000, start (60000, 40000, 0), p = 0.01.
func fig11(out string, quick bool) error {
	n := 100000
	if quick {
		n = 20000
	}
	run, err := lv.Simulate(lv.Config{
		N:        n,
		InitialX: n * 6 / 10,
		InitialY: n * 4 / 10,
		Periods:  1000,
		FailAt:   -1,
		Seed:     2004,
	})
	if err != nil {
		return err
	}
	if err := plot.WriteDAT(filepath.Join(out, "fig11.dat"),
		[]string{"time", "x", "y", "z"}, run.Times, run.X, run.Y, run.Z); err != nil {
		return err
	}
	chart := plot.NewChart("Fig 11: LV Protocol - Variation of Populations", "Time", "Count")
	chart.AddLine("State X", run.Times, run.X)
	chart.AddLine("State Y", run.Times, run.Y)
	chart.AddLine("State Z", run.Times, run.Z)
	fmt.Printf("   winner %s, converged at t = %d (paper: < 500)\n", run.Winner, run.ConvergedAt)
	return chart.WriteSVG(filepath.Join(out, "fig11.svg"))
}

// fig12: as fig11 with 50% massive failure at t = 100 (paper converges at
// t = 862).
func fig12(out string, quick bool) error {
	n := 100000
	if quick {
		n = 20000
	}
	run, err := lv.Simulate(lv.Config{
		N:        n,
		InitialX: n * 6 / 10,
		InitialY: n * 4 / 10,
		Periods:  1400,
		FailAt:   100,
		FailFrac: 0.5,
		Seed:     2004,
	})
	if err != nil {
		return err
	}
	if err := plot.WriteDAT(filepath.Join(out, "fig12.dat"),
		[]string{"time", "x", "y", "z"}, run.Times, run.X, run.Y, run.Z); err != nil {
		return err
	}
	chart := plot.NewChart("Fig 12: LV Protocol - Effect of Massive Failures", "Time", "Count")
	chart.AddLine("State X", run.Times, run.X)
	chart.AddLine("State Y", run.Times, run.Y)
	chart.AddLine("State Z", run.Times, run.Z)
	fmt.Printf("   killed %d, winner %s, converged at t = %d (paper: 862)\n",
		run.Killed, run.Winner, run.ConvergedAt)
	return chart.WriteSVG(filepath.Join(out, "fig12.svg"))
}

// suppAttack: §4.1's untraceability argument quantified — survival
// probability of the endemic object under directed attacks whose
// replica-location snapshot is increasingly stale by the time the strike
// lands. Static placement dies at every delay (its snapshot never goes
// stale); endemic survival rises from 0 to ≈ 1 over a few migration
// stints (1/γ periods).
func suppAttack(out string, quick bool) error {
	p := endemic.Params{B: 2, Gamma: 0.2, Alpha: 0.1}
	delays := []int{0, 1, 2, 4, 8, 20, 40}
	trials := 20
	n := 2000
	if quick {
		trials = 6
	}
	var xs, surv, static []float64
	fmt.Println("   mount-delay  endemic-survival  static-survival")
	for _, d := range delays {
		atk := replica.AttackConfig{Staleness: d + 20, MountDelay: d, Strikes: 2}
		pr, err := replica.SurvivalProbability(n, p, atk, trials, 2004)
		if err != nil {
			return err
		}
		xs = append(xs, float64(d))
		surv = append(surv, pr)
		static = append(static, 0)
		fmt.Printf("   %-12d %-17.2f %.2f\n", d, pr, 0.0)
	}
	if err := plot.WriteDAT(filepath.Join(out, "supp_attack.dat"),
		[]string{"mount_delay", "endemic_survival", "static_survival"}, xs, surv, static); err != nil {
		return err
	}
	chart := plot.NewChart("Supplementary: directed attack with stale replica locations", "Strike delay (periods)", "Survival probability")
	chart.AddLine("endemic", xs, surv)
	chart.AddLine("static placement", xs, static)
	return chart.WriteSVG(filepath.Join(out, "supp_attack.svg"))
}

// suppViews: footnote 1 — equilibrium stash population as the membership
// view shrinks from full down to a handful of peers.
func suppViews(out string, quick bool) error {
	const n = 20000
	p := endemic.Params{B: 2, Gamma: 0.1, Alpha: 0.001}
	proto, err := endemic.NewFigure1Protocol(p)
	if err != nil {
		return err
	}
	eq := endemic.StableEquilibrium(p.Beta(), p.Gamma, p.Alpha)
	views := []int{2, 4, 8, 16, 29, 64, 0} // 0 = full membership
	warmup, window := 1500, 500
	if quick {
		warmup, window = 600, 300
	}
	// One job per view size, fanned out in parallel.
	sums := make([]float64, len(views))
	jobs := make([]harness.Job, len(views))
	for i, k := range views {
		sum := &sums[i]
		cfg := sim.Config{
			N: n, Protocol: proto,
			Initial:  map[ode.Var]int{endemic.Receptive: n - n/10, endemic.Stash: n / 10, endemic.Averse: 0},
			ViewSize: k,
		}
		jobs[i] = harness.Job{
			Name: fmt.Sprintf("view%d", k),
			Seed: 2004,
			New: func(seed int64) (harness.Runner, error) {
				cfg.Seed = seed
				return harness.NewAgent(cfg)
			},
			Periods: warmup + window,
			AfterStep: func(r harness.Runner, t int) {
				if t >= warmup {
					*sum += float64(r.Count(endemic.Stash))
				}
			},
		}
	}
	if _, err := harness.Sweep(jobs, harness.Options{}); err != nil {
		return err
	}
	var xs, stash []float64
	fmt.Println("   view-size  stash (analysis 193.1)")
	for i, k := range views {
		avgStash := sums[i] / float64(window)
		label := k
		if k == 0 {
			label = n - 1 // full membership
		}
		xs = append(xs, float64(label))
		stash = append(stash, avgStash)
		fmt.Printf("   %-10d %.1f\n", label, avgStash)
	}
	if err := plot.WriteDAT(filepath.Join(out, "supp_views.dat"),
		[]string{"view_size", "stash", "analysis"}, xs, stash, repeatValue(eq.Stash*n, len(xs))); err != nil {
		return err
	}
	chart := plot.NewChart("Supplementary: equilibrium vs membership view size", "View size (peers)", "Mean stash population")
	chart.AddLine("measured", xs, stash)
	chart.AddLine("analysis", xs, repeatValue(eq.Stash*n, len(xs)))
	return chart.WriteSVG(filepath.Join(out, "supp_views.svg"))
}

// suppMargin: the probabilistic majority-selection specification promises
// the decision equals the initial majority "w.h.p."; this sweep measures
// the accuracy as a function of the initial margin. Near-ties sit close to
// the saddle separatrix and can flip; clear majorities essentially never
// lose.
func suppMargin(out string, quick bool) error {
	n, trials, periods := 5000, 10, 6000
	if quick {
		// Small N makes the near-tie flips visible: at N = 400 the
		// one-period fluctuation scale √N exceeds a 1% margin.
		n, trials, periods = 400, 10, 4000
	}
	margins := []int{51, 52, 55, 60, 70}
	points, err := lv.MajorityAccuracy(n, margins, trials, periods, 0.05, 2004)
	if err != nil {
		return err
	}
	var xs, acc, conv []float64
	fmt.Println("   margin%  accuracy  mean-convergence")
	for _, pt := range points {
		xs = append(xs, float64(pt.MarginPct))
		acc = append(acc, pt.Accuracy)
		conv = append(conv, pt.MeanConvergence)
		fmt.Printf("   %-8d %-9.2f %.0f\n", pt.MarginPct, pt.Accuracy, pt.MeanConvergence)
	}
	if err := plot.WriteDAT(filepath.Join(out, "supp_margin.dat"),
		[]string{"margin_pct", "accuracy", "mean_convergence"}, xs, acc, conv); err != nil {
		return err
	}
	chart := plot.NewChart("Supplementary: LV majority accuracy vs initial margin", "Initial majority (%)", "P(majority wins)")
	chart.AddLine("accuracy", xs, acc)
	return chart.WriteSVG(filepath.Join(out, "supp_margin.svg"))
}

func repeatValue(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// r1: epidemic rounds vs log₂ N.
func r1(out string, quick bool) error {
	ns := []int{1000, 4000, 16000, 64000}
	if quick {
		ns = []int{1000, 4000, 16000}
	}
	var xs, rounds, pred []float64
	fmt.Println("   N      rounds  2·lnN")
	for _, n := range ns {
		res, err := epidemic.Run(n, 2004, 1000)
		if err != nil {
			return err
		}
		xs = append(xs, float64(n))
		rounds = append(rounds, float64(res.Rounds))
		pred = append(pred, epidemic.PredictedRounds(n))
		fmt.Printf("   %-6d %-7d %.1f\n", n, res.Rounds, epidemic.PredictedRounds(n))
	}
	if err := plot.WriteDAT(filepath.Join(out, "r1_epidemic_logn.dat"),
		[]string{"N", "rounds", "predicted"}, xs, rounds, pred); err != nil {
		return err
	}
	chart := plot.NewChart("R1: Epidemic completes in O(log N) rounds", "N", "Rounds")
	chart.AddLine("measured", xs, rounds)
	chart.AddLine("2·ln N", xs, pred)
	return chart.WriteSVG(filepath.Join(out, "r1_epidemic_logn.svg"))
}

// r2: replica longevity headline numbers.
func r2(out string, _ bool) error {
	rows := []struct {
		n        int
		replicas float64
	}{
		{1024, 50},
		{1 << 20, 100},
	}
	var ns, reps, years []float64
	fmt.Println("   N        replicas  P(extinction)  longevity(years)")
	for _, r := range rows {
		p := endemic.ExtinctionProbability(r.replicas)
		y := endemic.ExpectedLongevityYears(r.replicas, 6)
		ns = append(ns, float64(r.n))
		reps = append(reps, r.replicas)
		years = append(years, y)
		fmt.Printf("   %-8d %-9.0f %-14.3g %.3g\n", r.n, r.replicas, p, y)
	}
	return plot.WriteDAT(filepath.Join(out, "r2_longevity.dat"),
		[]string{"N", "replicas", "longevity_years"}, ns, reps, years)
}

// r3: the §5.1 reality check.
func r3(out string, _ bool) error {
	p := endemic.Params{B: 2, Gamma: 1e-3, Alpha: 1e-6}
	rc := endemic.ComputeRealityCheck(100000, p, 88.2*1024, 6)
	fmt.Printf("   stash fraction of time: %.4g (paper ~0.001)\n", rc.StashFractionOfTime)
	fmt.Printf("   storage stint: %.0f periods = %.0f hours (paper: 100 hours)\n",
		rc.StintPeriods, rc.StintPeriods*6/60)
	fmt.Printf("   bandwidth: %.3g bps/file/host (paper: 3.92e-3)\n", rc.BandwidthBps)
	return plot.WriteDAT(filepath.Join(out, "r3_reality_check.dat"),
		[]string{"stash_fraction", "stint_periods", "bandwidth_bps"},
		[]float64{rc.StashFractionOfTime}, []float64{rc.StintPeriods}, []float64{rc.BandwidthBps})
}

// r4: LV convergence complexity — closed form vs RK4 integration.
func r4(out string, _ bool) error {
	sys := lv.System()
	u0, v0 := 0.01, 0.015
	tr, err := solver.RK4(solver.FromSystem(sys), []float64{u0, 1 - v0, v0 - u0}, 0, 3, 1e-4)
	if err != nil {
		return err
	}
	var ts, odeX, cfX, odeY, cfY []float64
	for _, tm := range []float64{0, 0.25, 0.5, 0.75, 1, 1.5, 2, 3} {
		got := tr.At(tm)
		x, y := lv.ConvergenceComplexity(u0, v0, tm)
		ts = append(ts, tm)
		odeX = append(odeX, got[0])
		cfX = append(cfX, x)
		odeY = append(odeY, got[1])
		cfY = append(cfY, y)
	}
	fmt.Printf("   x(1)/x(2) decay ratio: closed form %.2f (e^3 = %.2f)\n", cfX[4]/cfX[6], 20.09)
	if err := plot.WriteDAT(filepath.Join(out, "r4_convergence.dat"),
		[]string{"t", "x_ode", "x_closed", "y_ode", "y_closed"},
		ts, odeX, cfX, odeY, cfY); err != nil {
		return err
	}
	chart := plot.NewChart("R4: LV convergence complexity near (0,1)", "t", "fraction")
	chart.AddLine("x ODE", ts, odeX)
	chart.AddLine("x closed form", ts, cfX)
	return chart.WriteSVG(filepath.Join(out, "r4_convergence.svg"))
}
