package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The figure functions take the output directory and a quick flag, so the
// fast ones can run under `go test` directly; the expensive ones are
// covered by the bench harness and `cmd/figures -quick`.

func TestFastFigures(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		fn   figureFunc
		want []string // artifacts that must exist afterwards
	}{
		{"r2", r2, []string{"r2_longevity.dat"}},
		{"r3", r3, []string{"r3_reality_check.dat"}},
		{"r4", r4, []string{"r4_convergence.dat", "r4_convergence.svg"}},
		{"fig8", fig8, []string{"fig8.dat", "fig8.svg"}},
	}
	for _, tc := range cases {
		if err := tc.fn(dir, true); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, f := range tc.want {
			if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
				t.Fatalf("%s: missing artifact %s", tc.name, f)
			}
		}
	}
}

func TestFigureRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range figures {
		if seen[f.name] {
			t.Fatalf("duplicate figure name %q", f.name)
		}
		seen[f.name] = true
		if f.desc == "" || f.fn == nil {
			t.Fatalf("figure %q incomplete", f.name)
		}
	}
	// Every figure of the paper's evaluation must be present.
	for _, want := range []string{"fig2", "fig4", "fig5", "fig7", "fig8", "fig9", "fig11", "fig12", "r1", "r2", "r3", "r4"} {
		if !seen[want] {
			t.Fatalf("figure registry missing %q", want)
		}
	}
}

func TestRepeatValue(t *testing.T) {
	v := repeatValue(2.5, 3)
	if len(v) != 3 || v[0] != 2.5 || v[2] != 2.5 {
		t.Fatalf("repeatValue = %v", v)
	}
}
