// Command lvsim runs parameterized LV majority-selection experiments
// (§4.2/§5.2 of the paper) from the command line. With -trials k the
// election is replicated across k independent seeds fanned out in
// parallel through the harness scheduler, and a winner tally is printed.
//
// Usage:
//
//	lvsim -n 100000 -x 60000 -y 40000 -periods 1000
//	lvsim -n 100000 -x 60000 -y 40000 -fail-at 100 -fail-frac 0.5 -periods 1400
//	lvsim -n 20000 -x 12000 -y 8000 -trials 16 -workers 4
//	lvsim -n 1000000 -x 600000 -y 400000 -shards 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"odeproto/internal/harness"
	"odeproto/internal/lv"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lvsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lvsim", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 100000, "group size")
		x        = fs.Int("x", 60000, "initial processes proposing x")
		y        = fs.Int("y", 40000, "initial processes proposing y")
		pNorm    = fs.Float64("p", lv.DefaultP, "normalizing constant p (coin = 3p)")
		periods  = fs.Int("periods", 1000, "protocol periods to run")
		failAt   = fs.Int("fail-at", -1, "period of a massive failure (-1 = none)")
		failFrac = fs.Float64("fail-frac", 0.5, "fraction killed")
		every    = fs.Int("every", 25, "print a sample every this many periods")
		seed     = fs.Int64("seed", 1, "random seed")
		trials   = fs.Int("trials", 1, "replicate the election across this many derived seeds in parallel")
		workers  = fs.Int("workers", 0, "sweep worker-pool size (0 = all cores)")
		shards   = fs.Int("shards", 0, "agent-engine RNG shards K (0/1 = serial; fixed K is reproducible at any worker count)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; exit 0 like the old flag.Parse behavior
		}
		return err
	}
	harness.SetDefaultWorkers(*workers)
	harness.SetDefaultShards(*shards)
	cfg := lv.Config{
		N: *n, InitialX: *x, InitialY: *y,
		P: *pNorm, Periods: *periods,
		FailAt: *failAt, FailFrac: *failFrac,
		SampleEvery: *every, Seed: *seed,
	}
	if *trials > 1 {
		seeds := make([]int64, *trials)
		for i := range seeds {
			seeds[i] = harness.DeriveSeed(*seed, i)
		}
		runs, err := lv.SimulateMany(cfg, seeds)
		if err != nil {
			return err
		}
		wins := map[string]int{}
		var convSum float64
		converged := 0
		fmt.Println("seed\twinner\tconverged_at")
		for i, r := range runs {
			winner := string(r.Winner)
			if winner == "" {
				winner = "-"
			}
			wins[winner]++
			if r.ConvergedAt >= 0 {
				converged++
				convSum += float64(r.ConvergedAt)
			}
			fmt.Printf("%d\t%s\t%d\n", seeds[i], winner, r.ConvergedAt)
		}
		fmt.Printf("tally: x=%d y=%d unconverged=%d", wins["x"], wins["y"], wins["-"])
		if converged > 0 {
			fmt.Printf(", mean convergence period %.0f", convSum/float64(converged))
		}
		fmt.Println()
		return nil
	}
	run, err := lv.Simulate(cfg)
	if err != nil {
		return err
	}
	fmt.Println("period\tx\ty\tz")
	for i := range run.Times {
		fmt.Printf("%.0f\t%.0f\t%.0f\t%.0f\n", run.Times[i], run.X[i], run.Y[i], run.Z[i])
	}
	if run.Killed > 0 {
		fmt.Printf("killed %d at period %d\n", run.Killed, *failAt)
	}
	if run.ConvergedAt >= 0 {
		fmt.Printf("converged to %s at period %d\n", run.Winner, run.ConvergedAt)
	} else {
		fmt.Println("not converged within the simulated horizon")
	}
	return nil
}
