package main

import (
	"testing"

	"odeproto/internal/harness"
)

func resetHarnessDefaults() {
	harness.SetDefaultWorkers(0)
	harness.SetDefaultShards(0)
}

func TestRunSingleElection(t *testing.T) {
	defer resetHarnessDefaults()
	err := run([]string{
		"-n", "400", "-x", "240", "-y", "160", "-periods", "80", "-every", "20",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithMassiveFailure(t *testing.T) {
	defer resetHarnessDefaults()
	err := run([]string{
		"-n", "400", "-x", "240", "-y", "160",
		"-periods", "120", "-fail-at", "20", "-fail-frac", "0.5", "-every", "40",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTrialsSweep(t *testing.T) {
	defer resetHarnessDefaults()
	err := run([]string{
		"-n", "300", "-x", "200", "-y", "100",
		"-periods", "60", "-trials", "3", "-workers", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSharded(t *testing.T) {
	defer resetHarnessDefaults()
	err := run([]string{
		"-n", "400", "-x", "300", "-y", "100", "-periods", "60", "-shards", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagAndConfigErrors(t *testing.T) {
	defer resetHarnessDefaults()
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	// -h prints usage and succeeds (exit 0), like the pre-FlagSet CLI.
	if err := run([]string{"-h"}); err != nil {
		t.Fatalf("-h returned an error: %v", err)
	}
	// Initial proposals exceeding the group size are invalid.
	if err := run([]string{"-n", "100", "-x", "90", "-y", "20", "-periods", "10"}); err == nil {
		t.Fatal("x + y > n accepted")
	}
}
