// Command odelint runs the repo's invariant analyzers (package
// internal/lint) over Go packages and exits nonzero on findings.
//
// Usage:
//
//	odelint [-json] [-analyzers determinism,fsyncorder,...] [-C dir] [packages...]
//
// Packages default to ./... . Findings print one per line as
// file:line:col: [analyzer] message, or as a JSON array with -json.
// Individual findings are waived in-source with a justified
// //lint:ignore <analyzer> <reason> directive; a directive without a
// reason is itself a finding.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"odeproto/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the multichecker: exit 0 on a clean tree, 1 on findings,
// 2 on usage or load errors.
func run(args []string, stdout, stderr io.Writer) int {
	var (
		jsonOut  bool
		names    string
		dir      = "."
		patterns []string
	)
	for i := 0; i < len(args); i++ {
		switch arg := args[i]; {
		case arg == "-json" || arg == "--json":
			jsonOut = true
		case arg == "-analyzers" || arg == "--analyzers":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "odelint: -analyzers needs a value")
				return 2
			}
			i++
			names = args[i]
		case arg == "-C":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "odelint: -C needs a directory")
				return 2
			}
			i++
			dir = args[i]
		case arg == "-h" || arg == "-help" || arg == "--help":
			fmt.Fprintln(stderr, "usage: odelint [-json] [-analyzers a,b,...] [-C dir] [packages...]")
			return 2
		case len(arg) > 1 && arg[0] == '-':
			fmt.Fprintf(stderr, "odelint: unknown flag %s\n", arg)
			return 2
		default:
			patterns = append(patterns, arg)
		}
	}

	analyzers, err := lint.ByName(names)
	if err != nil {
		fmt.Fprintf(stderr, "odelint: %v\n", err)
		return 2
	}
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "odelint: %v\n", err)
		return 2
	}

	diags := []lint.Diagnostic{}
	for _, pkg := range pkgs {
		ds, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "odelint: %v\n", err)
			return 2
		}
		diags = append(diags, ds...)
	}

	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "odelint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Fprintf(stderr, "odelint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
