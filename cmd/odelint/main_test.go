package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odeproto/internal/lint"
)

// TestCleanTree pins the CI contract: the repo's own tree has zero
// findings (every in-tree violation was fixed or carries a justified
// ignore), so the required CI step passes.
func TestCleanTree(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d on the repo tree\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", stdout.String())
	}
}

// violatingModule writes a throwaway module named odeproto whose
// internal/sim package reads the wall clock — a determinism violation in
// a scoped path.
func violatingModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module odeproto\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(dir, "internal", "sim")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "sim.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestJSONFindings(t *testing.T) {
	dir := violatingModule(t, `package sim

import "time"

func stamp() int64 { return time.Now().UnixNano() }
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "determinism" || !strings.Contains(d.Message, "time.Now") {
		t.Errorf("diagnostic = %+v", d)
	}
	if !strings.HasSuffix(d.Pos.Filename, "sim.go") || d.Pos.Line != 5 {
		t.Errorf("position = %v, want sim.go:5", d.Pos)
	}
}

// TestReasonedIgnoreSuppresses pins the escape hatch end to end: a
// justified directive silences the finding and the run exits clean.
func TestReasonedIgnoreSuppresses(t *testing.T) {
	dir := violatingModule(t, `package sim

import "time"

func stamp() int64 {
	//lint:ignore determinism test fixture: label only, never reaches output
	return time.Now().UnixNano()
}
`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// TestUnreasonedIgnoreRejected pins that a bare //lint:ignore with no
// reason does not silence anything: the directive itself is a finding
// and the one it targeted survives.
func TestUnreasonedIgnoreRejected(t *testing.T) {
	dir := violatingModule(t, `package sim

import "time"

func stamp() int64 {
	//lint:ignore determinism
	return time.Now().UnixNano()
}
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "un-reasoned ignores are rejected") {
		t.Errorf("missing malformed-directive finding:\n%s", out)
	}
	if !strings.Contains(out, "time.Now") {
		t.Errorf("targeted finding did not survive the bare directive:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "nonsense"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2", code)
	}
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}
