// Command endemicsim runs parameterized endemic-replication experiments
// (§4.1/§5.1 of the paper) from the command line. With -seeds k the run
// is replicated across k independent seeds fanned out in parallel through
// the harness scheduler (output is identical at any -workers count).
//
// Usage:
//
//	endemicsim -n 100000 -b 2 -gamma 0.001 -alpha 0.000001 -periods 10000 -fail-at 5000 -fail-frac 0.5
//	endemicsim -n 2000 -b 32 -gamma 0.1 -alpha 0.005 -churn -hours 170
//	endemicsim -n 20000 -periods 1000 -fail-at 500 -seeds 8 -workers 4
//	endemicsim -n 1000000 -periods 100 -shards 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"odeproto/internal/churn"
	"odeproto/internal/endemic"
	"odeproto/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "endemicsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("endemicsim", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 100000, "group size")
		b        = fs.Int("b", 2, "contact fan-out b (β = 2b)")
		gamma    = fs.Float64("gamma", 1e-3, "recovery rate γ")
		alpha    = fs.Float64("alpha", 1e-6, "susceptibility rate α")
		periods  = fs.Int("periods", 10000, "protocol periods to run")
		failAt   = fs.Int("fail-at", -1, "period of a massive failure (-1 = none)")
		failFrac = fs.Float64("fail-frac", 0.5, "fraction killed in the massive failure")
		churnOn  = fs.Bool("churn", false, "drive the run with an Overnet-calibrated churn trace")
		hours    = fs.Float64("hours", 170, "churn trace length in hours (10 periods/hour)")
		every    = fs.Int("every", 100, "print a sample every this many periods")
		seed     = fs.Int64("seed", 1, "random seed")
		seeds    = fs.Int("seeds", 1, "replicate the run across this many derived seeds in parallel")
		workers  = fs.Int("workers", 0, "sweep worker-pool size (0 = all cores)")
		shards   = fs.Int("shards", 0, "agent-engine RNG shards K (0/1 = serial; fixed K is reproducible at any worker count)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; exit 0 like the old flag.Parse behavior
		}
		return err
	}
	harness.SetDefaultWorkers(*workers)
	harness.SetDefaultShards(*shards)
	params := endemic.Params{B: *b, Gamma: *gamma, Alpha: *alpha}
	if err := params.Validate(); err != nil {
		return err
	}
	a := endemic.Analyze(params.Beta(), params.Gamma, params.Alpha)
	fmt.Printf("equilibrium: x∞=%.4g y∞=%.4g z∞=%.4g (%s); expected stashers %.1f\n",
		a.Equilibrium.Receptive, a.Equilibrium.Stash, a.Equilibrium.Averse,
		a.Class, a.Equilibrium.Stash*float64(*n))

	if *churnOn {
		trace, err := churn.Synthesize(*n, *hours, *seed, churn.Config{})
		if err != nil {
			return err
		}
		res, err := endemic.RunChurn(endemic.ChurnConfig{
			N: *n, Params: params, Trace: trace,
			PeriodsPerHour: 10, RecordFromHour: 0, RecordToHour: *hours,
			Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Println("hour\tstash\trcptv\tavers\ttransfers")
		step := *every
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(res.Hours); i += step {
			fmt.Printf("%.1f\t%.0f\t%.0f\t%.0f\t%.0f\n",
				res.Hours[i], res.Stash[i], res.Receptive[i], res.Averse[i], res.RcptvToStash[i])
		}
		fmt.Printf("mean alive: %.0f\n", res.MeanAlive)
		return nil
	}

	// A negative -fail-at is the no-failure sentinel understood by
	// MassiveFailureConfig; -fail-at at or past -periods fails loudly.
	cfg := endemic.MassiveFailureConfig{
		N: *n, Params: params,
		FailAt: *failAt, FailFrac: *failFrac,
		Periods: *periods, RecordFrom: 0, Seed: *seed,
	}
	if *seeds > 1 {
		// Replicate across derived seeds, fanned out in parallel; print a
		// per-seed summary instead of the full series.
		sv := make([]int64, *seeds)
		for i := range sv {
			sv[i] = harness.DeriveSeed(*seed, i)
		}
		results, err := endemic.RunMassiveFailureSeeds(cfg, sv)
		if err != nil {
			return err
		}
		fmt.Println("seed\tfinal_stash\tfinal_rcptv\tkilled")
		for i, res := range results {
			last := len(res.Stash) - 1
			if last < 0 {
				fmt.Printf("%d\t-\t-\t%d\n", sv[i], res.Killed)
				continue
			}
			fmt.Printf("%d\t%.0f\t%.0f\t%d\n", sv[i], res.Stash[last], res.Receptive[last], res.Killed)
		}
		return nil
	}
	res, err := endemic.RunMassiveFailure(cfg)
	if err != nil {
		return err
	}
	fmt.Println("period\tstash\trcptv\tavers\tflux")
	for i := 0; i < len(res.Times); i += *every {
		fmt.Printf("%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			res.Times[i], res.Stash[i], res.Receptive[i], res.Averse[i], res.Flux[i])
	}
	if res.Killed > 0 {
		fmt.Printf("killed %d at period %d\n", res.Killed, *failAt)
	}
	return nil
}
