package main

import (
	"strings"
	"testing"

	"odeproto/internal/harness"
)

// The CLI runs tiny configurations in tests; keep the process-wide
// harness knobs pristine afterwards so sibling tests are unaffected.
func resetHarnessDefaults() {
	harness.SetDefaultWorkers(0)
	harness.SetDefaultShards(0)
}

func TestRunSingleWithFailure(t *testing.T) {
	defer resetHarnessDefaults()
	err := run([]string{
		"-n", "500", "-periods", "60", "-fail-at", "30", "-fail-frac", "0.5",
		"-gamma", "0.05", "-alpha", "0.005", "-every", "20",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSeedsSweep(t *testing.T) {
	defer resetHarnessDefaults()
	err := run([]string{
		"-n", "300", "-periods", "30", "-seeds", "3", "-workers", "2",
		"-gamma", "0.05", "-alpha", "0.005",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunChurnTrace(t *testing.T) {
	defer resetHarnessDefaults()
	err := run([]string{
		"-churn", "-n", "300", "-hours", "2", "-every", "1",
		"-gamma", "0.1", "-alpha", "0.005", "-b", "32",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSharded(t *testing.T) {
	defer resetHarnessDefaults()
	err := run([]string{
		"-n", "400", "-periods", "30", "-shards", "4",
		"-gamma", "0.05", "-alpha", "0.005",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagAndParamErrors(t *testing.T) {
	defer resetHarnessDefaults()
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	// -h prints usage and succeeds (exit 0), like the pre-FlagSet CLI.
	if err := run([]string{"-h"}); err != nil {
		t.Fatalf("-h returned an error: %v", err)
	}
	// b = 0 violates the §4.1.2 parameter constraints.
	err := run([]string{"-n", "100", "-b", "0", "-periods", "10"})
	if err == nil {
		t.Fatal("invalid endemic params accepted")
	}
	// An event at or past the horizon must fail loudly (harness contract).
	err = run([]string{"-n", "100", "-periods", "10", "-fail-at", "10"})
	if err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Fatalf("out-of-horizon failure accepted: %v", err)
	}
}
