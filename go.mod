module odeproto

go 1.24
