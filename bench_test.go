// Benchmarks regenerating every experiment of the paper's evaluation at
// reduced scale (cmd/figures runs the same experiments at paper scale).
// Each benchmark reports the quantity the paper's figure or in-text result
// is about via b.ReportMetric, so `go test -bench=. -benchmem` doubles as
// a one-page reproduction report.
package odeproto_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"odeproto/internal/asyncnet"
	"odeproto/internal/churn"
	"odeproto/internal/cluster"
	"odeproto/internal/core"
	"odeproto/internal/endemic"
	"odeproto/internal/epidemic"
	"odeproto/internal/harness"
	"odeproto/internal/lv"
	"odeproto/internal/ode"
	"odeproto/internal/replica"
	"odeproto/internal/service"
	"odeproto/internal/sim"
	"odeproto/internal/solver"
	"odeproto/internal/store"
)

// BenchmarkFig2EndemicPhasePortrait simulates the Figure 2 stable-spiral
// phase portrait (N = 1000, β = 4, γ = 1, α = 0.01, seven initial points)
// and reports the simulated endpoint's distance to the analytic
// equilibrium.
func BenchmarkFig2EndemicPhasePortrait(b *testing.B) {
	p := endemic.Params{B: 2, Gamma: 1.0, Alpha: 0.01}
	eq := endemic.StableEquilibrium(p.Beta(), p.Gamma, p.Alpha)
	var dist float64
	for i := 0; i < b.N; i++ {
		trs, err := endemic.PhasePortrait(p, endemic.Figure2InitialPoints(), 600, 5, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		tr := trs[0]
		dx := tr.Xs[len(tr.Xs)-1] - 1000*eq.Receptive
		dy := tr.Ys[len(tr.Ys)-1] - 1000*eq.Stash
		dist = math.Hypot(dx, dy)
	}
	b.ReportMetric(dist, "final_dist_to_equilibrium")
}

// BenchmarkFig4LVPhasePortrait simulates the Figure 4 bistable portrait
// and reports how many of the off-diagonal initial points converged to the
// majority corner predicted by Theorem 4.
func BenchmarkFig4LVPhasePortrait(b *testing.B) {
	correct := 0
	for i := 0; i < b.N; i++ {
		trs, err := lv.PhasePortrait(1000, 0.05, lv.Figure4InitialPoints(), 2500, 25, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		correct = 0
		for _, tr := range trs {
			lastX := tr.Xs[len(tr.Xs)-1]
			lastY := tr.Ys[len(tr.Ys)-1]
			switch {
			case tr.X0 > tr.Y0 && lastX > 950:
				correct++
			case tr.X0 < tr.Y0 && lastY > 950:
				correct++
			case tr.X0 == tr.Y0:
				correct++ // ties may break either way (§4.2.2)
			}
		}
	}
	b.ReportMetric(float64(correct), "theorem4_correct_of_7")
}

// BenchmarkFig5MassiveFailure runs the massive-failure experiment (50% of
// hosts crash) at N = 20000 and reports the stash population before and
// after the failure — the paper's Figure 5 shape: the count halves and
// stabilizes, never reaching zero.
func BenchmarkFig5MassiveFailure(b *testing.B) {
	var pre, post float64
	for i := 0; i < b.N; i++ {
		res, err := endemic.RunMassiveFailure(endemic.MassiveFailureConfig{
			N:      20000,
			Params: endemic.Params{B: 2, Gamma: 1e-2, Alpha: 1e-4},
			FailAt: 500, FailFrac: 0.5,
			Periods: 1000, RecordFrom: 0, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		pre, post = res.Stash[480], res.Stash[len(res.Stash)-1]
		if post == 0 {
			b.Fatal("replicas extinct after massive failure")
		}
	}
	b.ReportMetric(pre, "stash_before")
	b.ReportMetric(post, "stash_after")
}

// BenchmarkFig6FileFlux reports the file-flux rate (receptive→stash
// transfers per period) before and after the massive failure; the paper's
// point is that the failure barely disturbs it.
func BenchmarkFig6FileFlux(b *testing.B) {
	var fluxPre, fluxPost float64
	for i := 0; i < b.N; i++ {
		res, err := endemic.RunMassiveFailure(endemic.MassiveFailureConfig{
			N:      20000,
			Params: endemic.Params{B: 2, Gamma: 1e-2, Alpha: 1e-4},
			FailAt: 500, FailFrac: 0.5,
			Periods: 1000, RecordFrom: 0, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		fluxPre, fluxPost = avg(res.Flux[300:500]), avg(res.Flux[800:])
	}
	b.ReportMetric(fluxPre, "flux_before")
	b.ReportMetric(fluxPost, "flux_after")
}

// BenchmarkFig7AnalysisVsMeasured runs the analysis-vs-measured sweep and
// reports the worst relative error of the measured median stash population
// against the closed-form equilibrium (2) — the paper's Figure 7 shows
// they "tally very closely".
func BenchmarkFig7AnalysisVsMeasured(b *testing.B) {
	p := endemic.Params{B: 2, Gamma: 0.1, Alpha: 0.001}
	var worst float64
	for i := 0; i < b.N; i++ {
		points, err := endemic.RunEquilibriumSweep([]int{12500, 25000}, p, 600, 600, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, pt := range points {
			if e := math.Abs(pt.StashMeasured.Median-pt.StashAnalysis) / pt.StashAnalysis; e > worst {
				worst = e
			}
		}
	}
	b.ReportMetric(worst*100, "worst_error_%")
}

// BenchmarkFig8Untraceability runs the stasher-scatter experiment and
// reports the |time, host-ID| correlation (≈ 0 for untraceable replicas)
// and the load-balancing fairness CV.
func BenchmarkFig8Untraceability(b *testing.B) {
	p := endemic.Params{B: 2, Gamma: 0.1, Alpha: 0.01}
	var corr, fair float64
	for i := 0; i < b.N; i++ {
		res, err := endemic.RunUntraceability(1000, p, 500, 200, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		corr, fair = math.Abs(res.TimeHostCorrelation), res.Fairness
	}
	b.ReportMetric(corr, "abs_time_host_corr")
	b.ReportMetric(fair, "fairness_cv")
}

// BenchmarkFig9ChurnPopulations runs the endemic protocol under
// Overnet-calibrated churn and reports the minimum stash population over
// the recorded window (the paper's point: it stays stable and non-zero).
func BenchmarkFig9ChurnPopulations(b *testing.B) {
	var minStash float64
	for i := 0; i < b.N; i++ {
		trace, err := churn.Synthesize(2000, 40, int64(i), churn.Config{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := endemic.RunChurn(endemic.ChurnConfig{
			N: 2000, Params: endemic.Params{B: 32, Gamma: 0.1, Alpha: 0.005},
			Trace: trace, PeriodsPerHour: 10,
			RecordFromHour: 20, RecordToHour: 40, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		minStash = res.Stash[0]
		for _, s := range res.Stash {
			if s < minStash {
				minStash = s
			}
		}
	}
	b.ReportMetric(minStash, "min_stash")
}

// BenchmarkFig10ChurnTransitions reports the mean per-period transition
// counts under churn (Figure 10's three streams stay low and stable).
func BenchmarkFig10ChurnTransitions(b *testing.B) {
	var transfers, deletions float64
	for i := 0; i < b.N; i++ {
		trace, err := churn.Synthesize(2000, 40, int64(i), churn.Config{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := endemic.RunChurn(endemic.ChurnConfig{
			N: 2000, Params: endemic.Params{B: 32, Gamma: 0.1, Alpha: 0.005},
			Trace: trace, PeriodsPerHour: 10,
			RecordFromHour: 20, RecordToHour: 40, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		transfers, deletions = avg(res.RcptvToStash), avg(res.StashToAverse)
	}
	b.ReportMetric(transfers, "transfers_per_period")
	b.ReportMetric(deletions, "deletions_per_period")
}

// BenchmarkFig11LVConvergence runs the Figure 11 majority run (60/40
// split) and reports the convergence period; the paper observes < 500 at
// N = 100,000, and the O(log N) complexity predicts a similar count at
// this scale.
func BenchmarkFig11LVConvergence(b *testing.B) {
	var converged float64
	for i := 0; i < b.N; i++ {
		run, err := lv.Simulate(lv.Config{
			N: 20000, InitialX: 12000, InitialY: 8000,
			Periods: 1500, FailAt: -1, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if run.Winner != lv.ProposalX {
			b.Fatalf("initial majority lost (winner %q)", run.Winner)
		}
		converged = float64(run.ConvergedAt)
	}
	b.ReportMetric(converged, "convergence_period")
}

// BenchmarkFig12LVMassiveFailure crashes 50% of processes at t = 100 and
// reports the (delayed) convergence period — the paper's run converged at
// t = 862 versus < 500 without failures.
func BenchmarkFig12LVMassiveFailure(b *testing.B) {
	var converged float64
	for i := 0; i < b.N; i++ {
		run, err := lv.Simulate(lv.Config{
			N: 20000, InitialX: 12000, InitialY: 8000,
			Periods: 2500, FailAt: 100, FailFrac: 0.5, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if run.ConvergedAt < 0 {
			b.Fatal("did not converge after massive failure")
		}
		converged = float64(run.ConvergedAt)
	}
	b.ReportMetric(converged, "convergence_period")
}

// BenchmarkR1EpidemicLogN reports epidemic completion rounds at N = 16000
// against the 2·ln N prediction.
func BenchmarkR1EpidemicLogN(b *testing.B) {
	var rounds float64
	for i := 0; i < b.N; i++ {
		res, err := epidemic.Run(16000, int64(i), 1000)
		if err != nil {
			b.Fatal(err)
		}
		rounds = float64(res.Rounds)
	}
	b.ReportMetric(rounds, "rounds")
	b.ReportMetric(epidemic.PredictedRounds(16000), "predicted_2lnN")
}

// BenchmarkR2Longevity evaluates the §4.1.3 longevity closed forms (the
// paper's 1.28e10- and 1.45e25-year headline numbers).
func BenchmarkR2Longevity(b *testing.B) {
	var y50, y100 float64
	for i := 0; i < b.N; i++ {
		y50 = endemic.ExpectedLongevityYears(50, 6)
		y100 = endemic.ExpectedLongevityYears(100, 6)
	}
	b.ReportMetric(y50/1e10, "longevity50_1e10yr")
	b.ReportMetric(y100/1e25, "longevity100_1e25yr")
}

// BenchmarkR3RealityCheck evaluates the §5.1 bandwidth estimate (paper:
// 3.92e-3 bps per file per host).
func BenchmarkR3RealityCheck(b *testing.B) {
	var bw float64
	for i := 0; i < b.N; i++ {
		rc := endemic.ComputeRealityCheck(100000,
			endemic.Params{B: 2, Gamma: 1e-3, Alpha: 1e-6}, 88.2*1024, 6)
		bw = rc.BandwidthBps
	}
	b.ReportMetric(bw*1e3, "bandwidth_mbps_e3")
}

// BenchmarkR4LVConvergenceComplexity compares the §4.2.2 closed-form
// linearized solution against RK4 integration of the full equations and
// reports the worst deviation of y(t).
func BenchmarkR4LVConvergenceComplexity(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		tr, err := solver.RK4(solver.FromSystem(lv.System()),
			[]float64{0.01, 1 - 0.015, 0.005}, 0, 2, 1e-4)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, tm := range []float64{0.25, 0.5, 1, 2} {
			_, yCF := lv.ConvergenceComplexity(0.01, 0.015, tm)
			if d := math.Abs(tr.At(tm)[1] - yCF); d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(worst, "worst_y_deviation")
}

// --- harness scheduler benchmarks ---

// benchSweep runs the Figure-2 phase portrait (seven jobs) with the given
// harness worker-pool size; the serial/parallel pair below measures the
// sweep scheduler's multi-core speedup rather than asserting it.
func benchSweep(b *testing.B, workers int) {
	harness.SetDefaultWorkers(workers)
	defer harness.SetDefaultWorkers(0)
	p := endemic.Params{B: 2, Gamma: 1.0, Alpha: 0.01}
	for i := 0; i < b.N; i++ {
		if _, err := endemic.PhasePortrait(p, endemic.Figure2InitialPoints(), 600, 5, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(workersOrAllCores(workers)), "workers")
}

func workersOrAllCores(w int) int {
	if w <= 0 {
		return runtime.NumCPU()
	}
	return w
}

// BenchmarkSweepSerial pins the harness to one worker.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel lets the harness use every core.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// --- service benchmarks ---

// benchServiceSpec builds the job body the service benchmarks POST: a
// tiny epidemic sweep whose seed the cache-miss benchmark varies.
func benchServiceSpec(seed int64) []byte {
	body, err := json.Marshal(map[string]any{
		"source":  "x' = -x*y\ny' = x*y",
		"n":       300,
		"initial": map[string]int{"x": 290, "y": 10},
		"periods": 20,
		"seed":    seed,
	})
	if err != nil {
		panic(err)
	}
	return body
}

// postServiceJob drives one POST /v1/jobs through the HTTP handler and,
// when the response is not already terminal (a cache miss), polls
// GET /v1/jobs/{id} until the job is done.
func postServiceJob(b *testing.B, handler http.Handler, body []byte) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK && rec.Code != http.StatusAccepted {
		b.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	var st service.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		b.Fatal(err)
	}
	for st.Status == service.StatusQueued || st.Status == service.StatusRunning {
		time.Sleep(100 * time.Microsecond)
		req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+st.ID, nil)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("poll: %d %s", rec.Code, rec.Body.String())
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			b.Fatal(err)
		}
	}
	if st.Status != service.StatusDone {
		b.Fatalf("job finished %s: %s", st.Status, st.Error)
	}
}

// BenchmarkServiceCacheHit measures request throughput through the HTTP
// handler when every POST is answered from the content-addressed result
// cache (the steady state of a service absorbing duplicate requests).
func BenchmarkServiceCacheHit(b *testing.B) {
	srv := service.New(service.Config{Workers: 1})
	defer srv.Close()
	handler := srv.Handler()
	body := benchServiceSpec(1)
	postServiceJob(b, handler, body) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postServiceJob(b, handler, body)
	}
	b.StopTimer()
	if hits := srv.SweepsExecuted(); hits != 1 {
		b.Fatalf("cache-hit benchmark executed %d sweeps, want 1", hits)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServiceCacheMiss measures the full compile-enqueue-simulate
// path: every POST carries a fresh seed, so every request runs a sweep.
func BenchmarkServiceCacheMiss(b *testing.B) {
	srv := service.New(service.Config{Workers: 1})
	defer srv.Close()
	handler := srv.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postServiceJob(b, handler, benchServiceSpec(int64(i+1)))
	}
	b.StopTimer()
	if n := srv.SweepsExecuted(); n != int64(b.N) {
		b.Fatalf("cache-miss benchmark executed %d sweeps for %d requests", n, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// --- cluster benchmarks ---

// startBenchCluster boots n odeprotod-shaped nodes — service, ring
// router, real loopback HTTP server — sharing one peer list, and returns
// their base URLs, services (for the sweep counters), and a cleanup.
func startBenchCluster(b *testing.B, n int) ([]string, []*service.Server, func()) {
	b.Helper()
	hts := make([]*httptest.Server, n)
	peers := make([]string, n)
	for i := range hts {
		hts[i] = httptest.NewUnstartedServer(nil)
		peers[i] = hts[i].Listener.Addr().String()
	}
	svcs := make([]*service.Server, n)
	routers := make([]*cluster.Router, n)
	bases := make([]string, n)
	for i := range hts {
		prefix, err := cluster.NodePrefix(peers, peers[i])
		if err != nil {
			b.Fatal(err)
		}
		svcs[i] = service.New(service.Config{Workers: 1, JobIDPrefix: prefix})
		rt, err := cluster.New(cluster.Config{Peers: peers, Self: peers[i], Service: svcs[i]})
		if err != nil {
			b.Fatal(err)
		}
		routers[i] = rt
		hts[i].Config.Handler = rt
		hts[i].Start()
		bases[i] = hts[i].URL
	}
	cleanup := func() {
		for i := range hts {
			hts[i].Close()
			routers[i].Close()
			svcs[i].Close()
		}
	}
	return bases, svcs, cleanup
}

// postClusterJob drives one POST /v1/jobs over real HTTP against base
// and polls the returned job (through the same node, exercising the
// ID-routed proxy when the job lives elsewhere) until it is done.
// Errors use b.Error, not b.Fatal: this runs inside RunParallel workers.
func postClusterJob(b *testing.B, client *http.Client, base string, body []byte) bool {
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Error(err)
		return false
	}
	var st service.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || (resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted) {
		b.Errorf("submit: %d %v", resp.StatusCode, err)
		return false
	}
	for st.Status == service.StatusQueued || st.Status == service.StatusRunning {
		time.Sleep(400 * time.Microsecond)
		resp, err := client.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			b.Error(err)
			return false
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			b.Errorf("poll: %d %v", resp.StatusCode, err)
			return false
		}
	}
	if st.Status != service.StatusDone {
		b.Errorf("job finished %s: %s", st.Status, st.Error)
		return false
	}
	return true
}

// BenchmarkClusterCacheMiss measures fresh-spec throughput of a 3-node
// ring absorbing 8 concurrent clients round-robined across the nodes:
// every POST routes to its key's owner, so the three worker pools share
// the load while each key still runs exactly once. The comparison
// baseline is BenchmarkClusterCacheMissSingleNode (same transport, same
// client parallelism, one node).
func BenchmarkClusterCacheMiss(b *testing.B) {
	bases, svcs, cleanup := startBenchCluster(b, 3)
	defer cleanup()
	client := &http.Client{Transport: &http.Transport{MaxIdleConns: 128, MaxIdleConnsPerHost: 64}}
	var seq atomic.Int64
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			postClusterJob(b, client, bases[int(i)%len(bases)], benchServiceSpec(i))
		}
	})
	b.StopTimer()
	var sweeps int64
	for _, s := range svcs {
		sweeps += s.SweepsExecuted()
	}
	if sweeps != int64(b.N) {
		b.Fatalf("cluster executed %d sweeps for %d distinct specs", sweeps, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(float64(len(bases)), "nodes")
}

// BenchmarkClusterCacheMissSingleNode is the single-node baseline for
// the pair: the identical client load (8 concurrent clients, fresh seeds,
// real loopback HTTP) against one plain odeprotod service.
func BenchmarkClusterCacheMissSingleNode(b *testing.B) {
	srv := service.New(service.Config{Workers: 1})
	defer srv.Close()
	ht := httptest.NewServer(srv.Handler())
	defer ht.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConns: 128, MaxIdleConnsPerHost: 64}}
	var seq atomic.Int64
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			postClusterJob(b, client, ht.URL, benchServiceSpec(seq.Add(1)))
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(1, "nodes")
}

// BenchmarkClusterCacheHit measures duplicate-spec throughput on the
// ring: every node serves the same key, two of the three by proxying to
// the owner over the pooled connections, and the sweep counter stays at
// one across the whole run.
func BenchmarkClusterCacheHit(b *testing.B) {
	bases, svcs, cleanup := startBenchCluster(b, 3)
	defer cleanup()
	client := &http.Client{Transport: &http.Transport{MaxIdleConns: 128, MaxIdleConnsPerHost: 64}}
	body := benchServiceSpec(1)
	if !postClusterJob(b, client, bases[0], body) { // warm the owner's cache
		b.Fatal("warmup failed")
	}
	var seq atomic.Int64
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			postClusterJob(b, client, bases[int(seq.Add(1))%len(bases)], body)
		}
	})
	b.StopTimer()
	var sweeps int64
	for _, s := range svcs {
		sweeps += s.SweepsExecuted()
	}
	if sweeps != 1 {
		b.Fatalf("cache-hit benchmark executed %d sweeps, want 1", sweeps)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(float64(len(bases)), "nodes")
}

// --- persistence benchmarks ---

// BenchmarkStoreAppend measures the durable job journal's append path —
// frame, CRC, write, fsync — the per-transition overhead every submitted
// job pays three times (submitted/running/terminal).
func BenchmarkStoreAppend(b *testing.B) {
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	spec := json.RawMessage(`{"source":"x' = -x*y\ny' = x*y\n","n":400,"periods":25,"seed":7}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := store.JobRecord{Op: store.OpSubmitted, ID: "j000001", Key: "abcd1234", Spec: spec, SubmittedAt: int64(i + 1)}
		if err := st.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "appends/s")
}

// benchStoreAppendParallel measures the journal under concurrent
// appenders — the submit-path load a cluster front-end fans onto one node
// — with and without group commit. The fsyncs metric shows the
// coalescing: per-append without group commit, per-batch with it.
func benchStoreAppendParallel(b *testing.B, opts store.Options) {
	st, err := store.Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	spec := json.RawMessage(`{"source":"x' = -x*y\ny' = x*y\n","n":400,"periods":25,"seed":7}`)
	var seq atomic.Int64
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			rec := store.JobRecord{Op: store.OpSubmitted, ID: fmt.Sprintf("j%06d", i),
				Key: "abcd1234", Spec: spec, SubmittedAt: i}
			if err := st.Append(rec); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "appends/s")
	b.ReportMetric(float64(st.Stats().WALSyncs), "fsyncs")
}

// BenchmarkStoreAppendParallel is the contended baseline: every append
// pays its own fsync.
func BenchmarkStoreAppendParallel(b *testing.B) {
	benchStoreAppendParallel(b, store.Options{})
}

// BenchmarkStoreAppendGroupCommit is the same contended load with
// Options.GroupCommit: concurrent appenders coalesce into one fsync per
// batch, so appends/s should beat the parallel baseline by roughly the
// achieved batch size.
func BenchmarkStoreAppendGroupCommit(b *testing.B) {
	benchStoreAppendParallel(b, store.Options{GroupCommit: true})
}

// benchStoreDir builds a data dir holding jobs completed lifecycles and
// their content-addressed result blobs.
func benchStoreDir(b *testing.B, jobs, rowsPerResult int) string {
	b.Helper()
	dir := b.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < jobs; i++ {
		res := service.JobResult{States: []string{"x", "y"}, Runs: []service.RunResult{{Seed: int64(i + 1)}}}
		for p := 0; p < rowsPerResult; p++ {
			res.Runs[0].Rows = append(res.Runs[0].Rows, service.PeriodRow{Period: p, Counts: []int{400 - p, p}})
		}
		blob, err := json.Marshal(&res)
		if err != nil {
			b.Fatal(err)
		}
		key := fmt.Sprintf("%064x", i+1)
		id := fmt.Sprintf("j%06d", i+1)
		if err := st.PutResult(key, blob); err != nil {
			b.Fatal(err)
		}
		for _, rec := range []store.JobRecord{
			{Op: store.OpSubmitted, ID: id, Key: key, SubmittedAt: int64(3*i + 1)},
			{Op: store.OpRunning, ID: id, StartedAt: int64(3*i + 2)},
			{Op: store.OpDone, ID: id, FinishedAt: int64(3*i + 3)},
		} {
			if err := st.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	}
	return dir
}

// BenchmarkStoreRecover measures WAL replay: reopening a data dir with
// 200 completed job lifecycles (600 records) and rebuilding their merged
// state.
func BenchmarkStoreRecover(b *testing.B) {
	const jobs = 200
	dir := benchStoreDir(b, jobs, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if got := len(st.Recovered()); got != jobs {
			b.Fatalf("recovered %d jobs, want %d", got, jobs)
		}
		st.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*jobs/b.Elapsed().Seconds(), "jobs_recovered/s")
}

// BenchmarkCacheWarmFromDisk measures a full service boot against a
// populated data dir: WAL replay plus loading the persisted results into
// the LRU (the restart path a production daemon pays once).
func BenchmarkCacheWarmFromDisk(b *testing.B) {
	const jobs = 64
	dir := benchStoreDir(b, jobs, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		srv := service.New(service.Config{Workers: 1, CacheSize: jobs, Store: st})
		if got := srv.Stats().WarmedResults; got != jobs {
			b.Fatalf("warmed %d results, want %d", got, jobs)
		}
		srv.Close()
		st.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*jobs/b.Elapsed().Seconds(), "results_warmed/s")
}

// --- ablation and substrate benchmarks ---

// BenchmarkAblationFrameworkVsFigure1 compares the canonical framework
// translation of the endemic equations against the paper's Figure-1
// variant: same equilibrium, different message complexity per period.
func BenchmarkAblationFrameworkVsFigure1(b *testing.B) {
	p := endemic.Params{B: 2, Gamma: 0.1, Alpha: 0.01}
	run := func(proto *core.Protocol, seed int64) (stash, msgs float64) {
		eq := endemic.StableEquilibrium(p.Beta(), p.Gamma, p.Alpha)
		n := 10000
		initY := int(eq.Stash * float64(n))
		initX := int(eq.Receptive * float64(n))
		var stashSum, msgSum float64
		out := harness.Run(harness.Job{
			Name: "ablation-protocol",
			Seed: seed,
			New: func(seed int64) (harness.Runner, error) {
				return harness.NewAgent(sim.Config{
					N: n, Protocol: proto,
					Initial: map[ode.Var]int{
						endemic.Receptive: initX, endemic.Stash: initY,
						endemic.Averse: n - initX - initY,
					},
					Seed: seed,
				})
			},
			Periods: 1000,
			AfterStep: func(r harness.Runner, t int) {
				if t < 500 {
					return
				}
				stashSum += float64(r.Count(endemic.Stash))
				msgSum += float64(r.(*harness.AgentRunner).MessagesLastPeriod())
			},
		})
		if out.Err != nil {
			b.Fatal(out.Err)
		}
		return stashSum / 500, msgSum / 500 / float64(n)
	}
	var fwStash, fwMsgs, v1Stash, v1Msgs float64
	for i := 0; i < b.N; i++ {
		fw, err := endemic.NewFrameworkProtocol(p)
		if err != nil {
			b.Fatal(err)
		}
		v1, err := endemic.NewFigure1Protocol(p)
		if err != nil {
			b.Fatal(err)
		}
		fwStash, fwMsgs = run(fw, int64(i))
		v1Stash, v1Msgs = run(v1, int64(i))
	}
	b.ReportMetric(fwStash, "framework_stash")
	b.ReportMetric(v1Stash, "figure1_stash")
	b.ReportMetric(fwMsgs, "framework_msgs_per_proc")
	b.ReportMetric(v1Msgs, "figure1_msgs_per_proc")
}

// BenchmarkAblationTokenDirectedVsTTL compares §6's two token delivery
// strategies on the x' = −y² system: membership-directed routing versus
// TTL-bounded random walk, reporting delivered-flow ratio.
func BenchmarkAblationTokenDirectedVsTTL(b *testing.B) {
	sys, err := ode.Parse("x' = -y^2\ny' = y^2", nil)
	if err != nil {
		b.Fatal(err)
	}
	proto, err := core.Translate(sys, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	// Scarce-target regime: only 2% of processes are in the token's
	// target state, so a short random walk often expires while directed
	// delivery always lands — the §6 trade-off.
	run := func(ttl int, seed int64) (moved, lost float64) {
		out := harness.Run(harness.Job{
			Name: "token-delivery",
			Seed: seed,
			New: func(seed int64) (harness.Runner, error) {
				return harness.NewAgent(sim.Config{
					N: 20000, Protocol: proto,
					Initial: map[ode.Var]int{"x": 400, "y": 19600},
					Seed:    seed, TokenTTL: ttl,
				})
			},
			Periods: 3,
			AfterStep: func(r harness.Runner, t int) {
				a := r.(*harness.AgentRunner)
				moved += float64(a.TransitionsLastPeriod()[[2]ode.Var{"x", "y"}])
				lost += float64(a.TokensLostLastPeriod())
			},
		})
		if out.Err != nil {
			b.Fatal(out.Err)
		}
		return moved, lost
	}
	var directed, walked, walkLost float64
	for i := 0; i < b.N; i++ {
		directed, _ = run(0, int64(i))
		walked, walkLost = run(4, int64(i))
	}
	b.ReportMetric(directed, "directed_conversions")
	b.ReportMetric(walked, "ttl4_conversions")
	b.ReportMetric(walkLost, "ttl4_expired")
}

// BenchmarkAblationFailureCompensation measures the §3 failure
// compensation: with 30% message loss, the compensated protocol's drift
// per unit of modelled time matches the loss-free equations, while the
// uncompensated one falls short by the (1−f) factor. Conversions are
// normalized by the protocol time scale p (one period = p time units).
func BenchmarkAblationFailureCompensation(b *testing.B) {
	const loss = 0.3
	sys := "x' = -x*y\ny' = x*y"
	run := func(opts core.Options, seed int64) float64 {
		s, err := ode.Parse(sys, nil)
		if err != nil {
			b.Fatal(err)
		}
		proto, err := core.Translate(s, opts)
		if err != nil {
			b.Fatal(err)
		}
		var drift float64
		out := harness.Run(harness.Job{
			Name: "failure-compensation",
			Seed: seed,
			New: func(seed int64) (harness.Runner, error) {
				return harness.NewAgent(sim.Config{
					N: 100000, Protocol: proto,
					Initial:     map[ode.Var]int{"x": 50000, "y": 50000},
					Seed:        seed,
					MessageLoss: loss,
				})
			},
			Periods: 1,
			AfterStep: func(r harness.Runner, t int) {
				trans := r.(harness.TransitionCounter).TransitionsLastPeriod()
				drift = float64(trans[[2]ode.Var{"x", "y"}]) / proto.P
			},
		})
		if out.Err != nil {
			b.Fatal(out.Err)
		}
		return drift
	}
	var plain, comp float64
	for i := 0; i < b.N; i++ {
		plain = run(core.Options{}, int64(i))
		comp = run(core.Options{FailureRate: loss}, int64(i))
	}
	b.ReportMetric(plain, "uncompensated_drift_per_time")
	b.ReportMetric(comp, "compensated_drift_per_time")
	b.ReportMetric(100000*0.25, "ideal_drift_per_time")
}

// BenchmarkSupplementalDirectedAttack quantifies §4.1's untraceability
// argument: survival probability of the endemic object under a directed
// attack with stale replica-location information, versus the static
// baseline (which always dies).
func BenchmarkSupplementalDirectedAttack(b *testing.B) {
	p := endemic.Params{B: 2, Gamma: 0.2, Alpha: 0.1}
	atk := replica.AttackConfig{Staleness: 60, MountDelay: 40, Strikes: 2}
	var surv float64
	for i := 0; i < b.N; i++ {
		pr, err := replica.SurvivalProbability(2000, p, atk, 4, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		surv = pr
	}
	staticOut, err := replica.AttackStatic(10, atk)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(surv, "endemic_survival_prob")
	b.ReportMetric(boolTo01(!staticOut.Died), "static_survival_prob")
}

// BenchmarkAblationViewSize exercises the paper's footnote 1: partial
// membership views of size O(log N) preserve the endemic equilibrium at a
// fraction of the membership state. Reported: equilibrium stash population
// under full membership vs log-sized views (analysis: 193).
func BenchmarkAblationViewSize(b *testing.B) {
	const n = 20000
	p := endemic.Params{B: 2, Gamma: 0.1, Alpha: 0.001}
	proto, err := endemic.NewFigure1Protocol(p)
	if err != nil {
		b.Fatal(err)
	}
	var full, logView float64
	for i := 0; i < b.N; i++ {
		// Full membership and the ~2·log2(20000) partial view run as a
		// two-job parallel sweep.
		sums := [2]float64{}
		views := [2]int{0, 29}
		jobs := make([]harness.Job, len(views))
		for j, k := range views {
			sum := &sums[j]
			cfg := sim.Config{
				N: n, Protocol: proto,
				Initial:  map[ode.Var]int{endemic.Receptive: n - n/10, endemic.Stash: n / 10, endemic.Averse: 0},
				ViewSize: k,
			}
			jobs[j] = harness.Job{
				Name: "view-ablation",
				Seed: int64(i),
				New: func(seed int64) (harness.Runner, error) {
					cfg.Seed = seed
					return harness.NewAgent(cfg)
				},
				Periods: 2000,
				AfterStep: func(r harness.Runner, t int) {
					if t >= 1500 {
						*sum += float64(r.Count(endemic.Stash))
					}
				},
			}
		}
		if _, err := harness.Sweep(jobs, harness.Options{}); err != nil {
			b.Fatal(err)
		}
		full, logView = sums[0]/500, sums[1]/500
	}
	eq := endemic.StableEquilibrium(p.Beta(), p.Gamma, p.Alpha)
	b.ReportMetric(full, "full_membership_stash")
	b.ReportMetric(logView, "logN_view_stash")
	b.ReportMetric(eq.Stash*n, "analysis_stash")
}

// BenchmarkEngineStep measures raw agent-engine throughput at the paper's
// full 100,000-host scale (one period per op).
func BenchmarkEngineStep(b *testing.B) {
	p := endemic.Params{B: 2, Gamma: 1e-3, Alpha: 1e-6}
	proto, err := endemic.NewFigure1Protocol(p)
	if err != nil {
		b.Fatal(err)
	}
	const n = 100000
	e, err := sim.New(sim.Config{
		N: n, Protocol: proto,
		Initial: map[ode.Var]int{endemic.Receptive: n - 200, endemic.Stash: 100, endemic.Averse: 100},
		Seed:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.ReportMetric(float64(n), "procs")
}

// benchMillionStep measures agent-engine period throughput at one million
// processes — 10× the paper's largest evaluation — for a given shard
// count (one period per op).
func benchMillionStep(b *testing.B, shards int) {
	p := endemic.Params{B: 2, Gamma: 1e-3, Alpha: 1e-6}
	proto, err := endemic.NewFigure1Protocol(p)
	if err != nil {
		b.Fatal(err)
	}
	const n = 1_000_000
	e, err := sim.New(sim.Config{
		N: n, Protocol: proto,
		Initial: map[ode.Var]int{endemic.Receptive: n - 2000, endemic.Stash: 1000, endemic.Averse: 1000},
		Seed:    1,
		Shards:  shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.ReportMetric(float64(n), "procs")
	b.ReportMetric(float64(shards), "shards")
}

// BenchmarkSerialStep1M is the single-stream baseline of the pair.
func BenchmarkSerialStep1M(b *testing.B) { benchMillionStep(b, 1) }

// BenchmarkShardedStep runs the same million-process period with 8 RNG
// shards across the worker pool; on a 4+-core machine it should be ≥ 2×
// the serial baseline.
func BenchmarkShardedStep(b *testing.B) { benchMillionStep(b, 8) }

// --- asyncnet substrate benchmarks ---

// benchAsyncnet runs the canonical pull epidemic on the asynchronous
// runtime: N processes, 100 protocol periods, 2ms nominal period, 10%
// initially infected, 5% message loss. The wallclock/virtual pair
// measures the virtual-time scheduler's speedup over the real-goroutine
// substrate — wallclock pays real elapsed time plus the timer and
// scheduler pressure of one goroutine per process, while virtual mode
// replays the same model as a deterministic event loop at CPU speed.
func benchAsyncnet(b *testing.B, mode asyncnet.Mode, n int) {
	b.Helper()
	sys, err := ode.Parse("x' = -x*y\ny' = x*y", nil)
	if err != nil {
		b.Fatal(err)
	}
	proto, err := core.Translate(sys, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var msgs float64
	for i := 0; i < b.N; i++ {
		res, err := asyncnet.Run(asyncnet.Config{
			N:          n,
			Protocol:   proto,
			Initial:    map[ode.Var]int{"x": n - n/10, "y": n / 10},
			Seed:       int64(i + 1),
			Periods:    100,
			Mode:       mode,
			BasePeriod: 2 * time.Millisecond,
			DropProb:   0.05,
		})
		if err != nil {
			b.Fatal(err)
		}
		msgs = float64(res.MessagesSent)
	}
	b.ReportMetric(float64(n), "procs")
	b.ReportMetric(msgs, "msgs")
}

// BenchmarkAsyncnetWallclock is the real-time baseline at N = 10,000.
func BenchmarkAsyncnetWallclock(b *testing.B) { benchAsyncnet(b, asyncnet.ModeWallclock, 10_000) }

// BenchmarkAsyncnetVirtual runs the identical configuration on the
// virtual-time scheduler; the bar for the discrete-event work is ≥ 50×
// the wallclock pair above. Measured on a single-core dev box: virtual
// ~90ms against wallclock draws of 4–34s (the goroutine substrate's
// timer pressure feeds back into missed timeouts, so its timing is
// load-sensitive) — 45–370× across observed runs, typically well past
// 50×, and growing with N since virtual has no goroutine-per-process
// ceiling.
func BenchmarkAsyncnetVirtual(b *testing.B) { benchAsyncnet(b, asyncnet.ModeVirtual, 10_000) }

// BenchmarkAsyncnetVirtual100k runs the virtual scheduler at the paper's
// full evaluation scale — N = 100,000 × 100 periods, far past the
// goroutine-per-process ceiling — in seconds of wall time.
func BenchmarkAsyncnetVirtual100k(b *testing.B) { benchAsyncnet(b, asyncnet.ModeVirtual, 100_000) }

// BenchmarkAggregateStep measures the count-based engine at the same
// configuration — O(#actions) per period, independent of N.
func BenchmarkAggregateStep(b *testing.B) {
	p := endemic.Params{B: 2, Gamma: 1e-3, Alpha: 1e-6}
	proto, err := endemic.NewFigure1Protocol(p)
	if err != nil {
		b.Fatal(err)
	}
	const n = 100000
	a, err := sim.NewAggregate(proto, map[ode.Var]int{
		endemic.Receptive: n - 200, endemic.Stash: 100, endemic.Averse: 100,
	}, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Step()
	}
}

// BenchmarkTranslate measures the translation framework itself.
func BenchmarkTranslate(b *testing.B) {
	sys := lv.System()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Translate(sys, core.Options{P: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func boolTo01(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
