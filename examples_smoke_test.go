package odeproto_test

import (
	"context"
	"os"
	"os/exec"
	"testing"
	"time"
)

// TestExamplesSmoke go-runs every example program and checks it exits 0,
// so the examples cannot silently rot as the library evolves. Each
// example takes between a fraction of a second and a few seconds; the
// whole set runs in parallel. Skipped under -short (the CI test step
// runs the full mode).
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not available: %v", err)
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		ran++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, goBin, "run", "./examples/"+name)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no example programs found")
	}
}
