// Package odeproto is a Go reproduction of "On the Design of Distributed
// Protocols from Differential Equations" (Indranil Gupta, ACM PODC 2004).
//
// The library translates systems of polynomial differential equations into
// executable distributed protocols (internal/core), provides the paper's
// equation taxonomy and rewriting techniques (internal/ode,
// internal/rewrite), the nonlinear-dynamics analysis toolkit
// (internal/dynamics, internal/linalg, internal/solver), the two case-study
// protocols — endemic migratory replication (internal/endemic) and
// Lotka–Volterra majority selection (internal/lv) — the epidemic motivating
// example (internal/epidemic), the simulation substrates needed to
// regenerate every figure of the paper's evaluation (internal/sim;
// internal/asyncnet, whose asynchronous system model runs by default on
// a deterministic virtual-time discrete-event scheduler with the
// goroutine-per-process wallclock runtime kept as its validation oracle;
// internal/churn, internal/membership,
// internal/replica, internal/mt19937, internal/stats, internal/plot), and
// the engine-agnostic experiment harness that fans those experiments out
// across cores deterministically and cancellably (internal/harness), and
// the HTTP compile-and-simulate service that exposes the whole pipeline as
// a long-running daemon with a content-addressed result cache and
// single-flight deduplication (internal/service, served by cmd/odeprotod),
// and the durable persistence layer behind it — a segmented checksummed
// WAL for job lifecycles plus fsync'd content-addressed result blobs,
// with crash recovery that truncates torn tails and re-serves completed
// sweeps across restarts (internal/store, enabled by odeprotod -data).
//
// See README.md for a package tour, a quickstart, harness usage, and the
// service's endpoint and cache semantics. The benchmarks in bench_test.go
// regenerate each experiment at reduced scale; cmd/figures regenerates
// them at paper scale.
package odeproto
